// Package nptl is the reproduction's baseline: a kernel-thread runtime in
// the style of the Native POSIX Thread Library, against which the paper
// compares its hybrid implementation in every I/O benchmark.
//
// Each NPTL thread is a goroutine making *blocking* calls into the same
// simulated kernel the hybrid runtime uses, with the costs that
// distinguished 2006 kernel threads from application-level threads modelled
// explicitly:
//
//   - Stack reservation. The paper configures NPTL with 32 KB stacks so it
//     can reach 16 K threads in 512 MB; each Thread here reserves (and, on
//     wall-clock benchmarks, touches) a stack-sized buffer, and a memory
//     budget makes spawning fail beyond the same limit — the reason the
//     NPTL curves in Figures 17 and 18 stop at 16 K.
//   - Context-switch cost. In the virtual-time domain each blocking
//     operation charges SwitchCost to the request's service time; in the
//     wall-clock domain each block/wake touches StackTouch bytes of the
//     thread's stack buffer, modelling the cache pollution of switching
//     between kernel-thread stacks.
package nptl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybrid/internal/disk"
	"hybrid/internal/kernel"
	"hybrid/internal/vclock"
)

// ErrNoMemory reports that spawning would exceed the stack memory budget
// (the 2006 equivalent: pthread_create failing with EAGAIN/ENOMEM).
var ErrNoMemory = errors.New("nptl: thread stack memory budget exhausted")

// Config parameterizes the baseline runtime.
type Config struct {
	// StackSize is the reserved stack per thread. Default 32 KB, the
	// paper's NPTL configuration.
	StackSize int
	// MemoryBudget caps total reserved stack memory; 0 means the paper's
	// 512 MB test machine. Negative means unlimited.
	MemoryBudget int64
	// SwitchCost is charged (in virtual time) per blocking operation.
	// Default 5µs, a 2006-era kernel context switch.
	SwitchCost time.Duration
	// StackTouch is how many bytes of the thread's stack are written on
	// every block/wake in the wall-clock domain, modelling the cache
	// pollution of kernel-thread switching. Default: the full stack.
	StackTouch int
}

func (c Config) withDefaults() Config {
	if c.StackSize <= 0 {
		c.StackSize = 32 * 1024
	}
	if c.MemoryBudget == 0 {
		c.MemoryBudget = 512 * 1024 * 1024
	}
	if c.SwitchCost == 0 {
		c.SwitchCost = 5 * time.Microsecond
	}
	if c.StackTouch == 0 {
		c.StackTouch = c.StackSize
	} else if c.StackTouch < 0 {
		c.StackTouch = 0
	}
	if c.StackTouch > c.StackSize {
		c.StackTouch = c.StackSize
	}
	return c
}

// Runtime is an NPTL-style kernel-thread runtime over a simulated kernel.
type Runtime struct {
	cfg   Config
	k     *kernel.Kernel
	fs    *kernel.FS
	clock vclock.Clock

	stackMem atomic.Int64
	threads  atomic.Int64
	switches atomic.Uint64
	wg       sync.WaitGroup

	virtual bool // clock is a virtual clock: charge SwitchCost, skip StackTouch
}

// New creates a baseline runtime over the given kernel and filesystem
// (fs may be nil).
func New(k *kernel.Kernel, fs *kernel.FS, cfg Config) *Runtime {
	_, virtual := k.Clock().(*vclock.VirtualClock)
	return &Runtime{cfg: cfg.withDefaults(), k: k, fs: fs, clock: k.Clock(), virtual: virtual}
}

// Threads reports the number of live threads.
func (r *Runtime) Threads() int64 { return r.threads.Load() }

// StackMemory reports total reserved stack bytes.
func (r *Runtime) StackMemory() int64 { return r.stackMem.Load() }

// Switches reports the number of blocking context switches performed.
func (r *Runtime) Switches() uint64 { return r.switches.Load() }

// Spawn starts a kernel thread running fn. It fails with ErrNoMemory when
// the stack budget is exhausted, which is how the baseline's thread count
// is capped in the figures.
func (r *Runtime) Spawn(fn func(t *Thread)) error {
	need := int64(r.cfg.StackSize)
	for {
		cur := r.stackMem.Load()
		if r.cfg.MemoryBudget > 0 && cur+need > r.cfg.MemoryBudget {
			return fmt.Errorf("%w: %d threads, %d MB reserved",
				ErrNoMemory, r.threads.Load(), cur>>20)
		}
		if r.stackMem.CompareAndSwap(cur, cur+need) {
			break
		}
	}
	t := &Thread{r: r}
	if r.cfg.StackTouch > 0 && !r.virtual {
		t.stack = make([]byte, r.cfg.StackSize)
	}
	r.threads.Add(1)
	r.wg.Add(1)
	r.clock.Enter() // a running kernel thread is a runnable activity
	go func() {
		defer func() {
			r.clock.Exit()
			r.threads.Add(-1)
			r.stackMem.Add(-need)
			r.wg.Done()
		}()
		fn(t)
	}()
	return nil
}

// Wait blocks until all spawned threads have finished.
func (r *Runtime) Wait() { r.wg.Wait() }

// Thread is one kernel thread's handle; all methods block the calling
// goroutine the way the corresponding Linux system calls block an NPTL
// thread.
type Thread struct {
	r     *Runtime
	stack []byte
	ep    *kernel.Epoll // lazily created private epoll for readiness waits
}

// contextSwitch models one block/wake pair's cost in the wall-clock
// domain by touching the thread's reserved stack.
func (t *Thread) contextSwitch() {
	t.r.switches.Add(1)
	if t.stack == nil {
		return
	}
	n := t.r.cfg.StackTouch
	for i := 0; i < n; i += 64 {
		t.stack[i]++
	}
}

// block parks the calling goroutine until wake is invoked, correctly
// releasing the virtual clock while parked. register runs before the park
// and must arrange for wake to be called exactly once; the waker's busy
// hold (event callbacks hold the clock) transfers to this thread.
func (t *Thread) block(register func(wake func())) {
	ch := make(chan struct{})
	wake := func() {
		// Transfer a hold to the woken thread before signalling, so the
		// clock cannot advance between the wake event and the thread
		// resuming.
		t.r.clock.Enter()
		close(ch)
	}
	register(wake)
	t.r.clock.Exit() // release this thread's hold while parked
	<-ch
	t.contextSwitch()
}

// epoll returns the thread's private epoll instance.
func (t *Thread) epoll() *kernel.Epoll {
	if t.ep == nil {
		t.ep = t.r.k.NewEpoll()
	}
	return t.ep
}

// waitReady blocks until fd is ready for mask.
func (t *Thread) waitReady(fd kernel.FD, mask kernel.Event) error {
	ep := t.epoll()
	var regErr error
	t.block(func(wake func()) {
		regErr = ep.Register(fd, mask, nil)
		if regErr != nil {
			wake()
			return
		}
		go func() {
			evs, _ := ep.Wait()
			// Wake (which takes the thread's hold) before releasing the
			// events' holds, so the busy count never dips to zero between.
			wake()
			for range evs {
				ep.Done()
			}
		}()
	})
	return regErr
}

// Read blocks until data is available (or EOF) and reads it.
func (t *Thread) Read(fd kernel.FD, p []byte) (int, error) {
	for {
		n, err := t.r.k.Read(fd, p)
		if !errors.Is(err, kernel.ErrAgain) {
			return n, err
		}
		if err := t.waitReady(fd, kernel.EventRead); err != nil {
			return 0, err
		}
	}
}

// Write blocks until at least one byte is written.
func (t *Thread) Write(fd kernel.FD, p []byte) (int, error) {
	for {
		n, err := t.r.k.Write(fd, p)
		if !errors.Is(err, kernel.ErrAgain) {
			return n, err
		}
		if err := t.waitReady(fd, kernel.EventWrite); err != nil {
			return 0, err
		}
	}
}

// WriteAll blocks until all of p is written.
func (t *Thread) WriteAll(fd kernel.FD, p []byte) error {
	for len(p) > 0 {
		n, err := t.Write(fd, p)
		if err != nil {
			return err
		}
		p = p[n:]
	}
	return nil
}

// ReadFull blocks until len(p) bytes are read or the stream ends,
// returning the count.
func (t *Thread) ReadFull(fd kernel.FD, p []byte) (int, error) {
	got := 0
	for got < len(p) {
		n, err := t.Read(fd, p[got:])
		if err != nil {
			return got, err
		}
		if n == 0 {
			break
		}
		got += n
	}
	return got, nil
}

// Accept blocks until a connection is pending and accepts it.
func (t *Thread) Accept(listenFD kernel.FD) (kernel.FD, error) {
	for {
		fd, err := t.r.k.Accept(listenFD)
		if !errors.Is(err, kernel.ErrAgain) {
			return fd, err
		}
		if err := t.waitReady(listenFD, kernel.EventRead); err != nil {
			return 0, err
		}
	}
}

// Connect opens a connection.
func (t *Thread) Connect(addr string) (kernel.FD, error) { return t.r.k.Connect(addr) }

// Close closes a descriptor.
func (t *Thread) Close(fd kernel.FD) error { return t.r.k.Close(fd) }

// Pread reads from a file at an offset, blocking for the disk — the
// baseline's synchronous counterpart of the hybrid runtime's sys_aio_read.
// In the virtual domain the request is charged SwitchCost extra service
// time, modelling the kernel-thread wakeup on completion.
func (t *Thread) Pread(f *kernel.File, p []byte, off int64) (int, error) {
	var (
		gotN   int
		gotErr error
	)
	t.block(func(wake func()) {
		extra := time.Duration(0)
		if t.r.virtual {
			extra = t.r.cfg.SwitchCost
		}
		t.r.fs.AIOReadExtra(f, off, p, extra, func(n int, err error) {
			gotN, gotErr = n, err
			wake()
		})
	})
	return gotN, gotErr
}

// Sleep blocks the thread for d in the kernel's timing domain.
func (t *Thread) Sleep(d time.Duration) {
	t.block(func(wake func()) {
		t.r.clock.After(d, wake)
	})
}

// Disk exposes the underlying device (for benchmarks that verify queue
// behaviour).
func (r *Runtime) Disk() *disk.Disk {
	if r.fs == nil {
		return nil
	}
	return r.fs.Disk()
}
