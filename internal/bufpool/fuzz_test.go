package bufpool

import (
	"bytes"
	"testing"
)

// FuzzBufpoolRoundtrip drives arbitrary Get/Put sequences and checks the
// ownership contract: a Get of any size yields a writable buffer of
// exactly that length whose contents survive until Put, regardless of
// what other buffers of any class do in between.
func FuzzBufpoolRoundtrip(f *testing.F) {
	f.Add([]byte{1, 0}, []byte{16})
	f.Add([]byte{255, 255, 0, 4}, []byte{0, 1, 2, 3})
	f.Add([]byte{8, 8, 8}, []byte{7})
	f.Fuzz(func(t *testing.T, sizes, fill []byte) {
		if len(sizes) == 0 || len(sizes) > 16 {
			t.Skip()
		}
		if len(fill) == 0 {
			fill = []byte{0xA5}
		}
		held := make([][]byte, 0, len(sizes))
		want := make([][]byte, 0, len(sizes))
		for i, sb := range sizes {
			// Sizes sweep from sub-class through beyond the largest class.
			n := int(sb) << (i % 8)
			b := Get(n)
			if len(b) != n {
				t.Fatalf("Get(%d): len %d", n, len(b))
			}
			pat := make([]byte, n)
			for j := range pat {
				pat[j] = fill[(i+j)%len(fill)]
			}
			copy(b, pat)
			held = append(held, b)
			want = append(want, pat)
			// Interleave: return every other buffer immediately.
			if i%2 == 1 {
				last := len(held) - 1
				if !bytes.Equal(held[last], want[last]) {
					t.Fatalf("buffer %d corrupted before Put", last)
				}
				if cap(held[last]) > 0 {
					Put(held[last])
				}
				held, want = held[:last], want[:last]
			}
		}
		for i := range held {
			if !bytes.Equal(held[i], want[i]) {
				t.Fatalf("buffer %d corrupted while others cycled", i)
			}
			if cap(held[i]) > 0 {
				Put(held[i])
			}
		}
	})
}
