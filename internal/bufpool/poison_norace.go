//go:build !race

package bufpool

// RaceChecked reports whether the pool's debug checks (put poisoning,
// double-put detection) are compiled in; see poison_race.go.
const RaceChecked = false

func trackPut([]byte) {}
func trackGet([]byte) {}
