//go:build race

package bufpool

import "sync"

// RaceChecked reports whether the pool's debug checks (put poisoning,
// double-put detection) are compiled in. They ride the -race build tag:
// the race detector is when correctness tests run, and the checks' cost
// (a global map and a full-buffer memset per Put) is unacceptable on the
// production hot path.
const RaceChecked = true

var (
	trackMu sync.Mutex
	// pooled holds the buffers currently inside a class pool, keyed by
	// backing-array identity. Holding the slice itself pins the array, so
	// the address cannot be recycled for a fresh allocation while the key
	// is live (which would fake a double put).
	pooled = make(map[*byte][]byte)
)

// trackPut poisons the returned buffer and panics if it is already in
// the pool. A caller that kept a view across Put reads Poison bytes
// instead of silently-stale data; a caller that Puts twice dies here
// instead of handing the same buffer to two owners.
func trackPut(b []byte) {
	key := &b[0]
	trackMu.Lock()
	if _, dup := pooled[key]; dup {
		trackMu.Unlock()
		panic("bufpool: double Put of the same buffer")
	}
	pooled[key] = b
	trackMu.Unlock()
	for i := range b {
		b[i] = Poison
	}
}

// trackGet releases the buffer from the pooled set as it is handed out.
func trackGet(b []byte) {
	b = b[:1]
	trackMu.Lock()
	delete(pooled, &b[0])
	trackMu.Unlock()
}
