package bufpool

import (
	"sync"
	"testing"
)

func TestGetLengthAndClassCapacity(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 512}, {512, 512}, {513, 2 << 10}, {1485, 2 << 10},
		{4 << 10, 4 << 10}, {5000, 16 << 10}, {64 << 10, 64 << 10},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Errorf("Get(%d): len %d, want %d", c.n, len(b), c.n)
		}
		if cap(b) != c.wantCap {
			t.Errorf("Get(%d): cap %d, want class %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	misses0 := Misses()
	b := Get(1 << 20)
	if len(b) != 1<<20 {
		t.Fatalf("len %d", len(b))
	}
	if Misses() == misses0 {
		t.Fatal("oversize Get should count as a miss")
	}
	Put(b) // must not panic: oversize buffers are dropped for the GC
}

func TestPutForeignBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a foreign buffer should panic")
		}
	}()
	Put(make([]byte, 100)) // cap 100 matches no class
}

func TestCountersBalance(t *testing.T) {
	g0, p0 := Gets(), Puts()
	var bufs [][]byte
	for i := 0; i < 32; i++ {
		bufs = append(bufs, Get(4096))
	}
	for _, b := range bufs {
		Put(b)
	}
	if got := Gets() - g0; got != 32 {
		t.Fatalf("gets %d, want 32", got)
	}
	if got := Puts() - p0; got != 32 {
		t.Fatalf("puts %d, want 32", got)
	}
}

// TestReuseAfterPutPoisonDetectsStaleReader is the pool's core safety
// property under -race builds: a caller that keeps reading a buffer
// after Put sees Poison bytes, not its old data. Without -race the
// check is compiled out and the test only asserts the build tag wiring.
func TestReuseAfterPutPoisonDetectsStaleReader(t *testing.T) {
	b := Get(512)
	for i := range b {
		b[i] = 0x5A
	}
	stale := b // a reader that (incorrectly) outlives the Put
	Put(b)
	if !RaceChecked {
		t.Skip("poisoning is compiled in only under -race builds")
	}
	for i, v := range stale {
		if v != Poison {
			t.Fatalf("stale view byte %d = %#x, want poison %#x", i, v, Poison)
		}
	}
}

func TestDoublePutPanicsUnderRace(t *testing.T) {
	if !RaceChecked {
		t.Skip("double-put detection is compiled in only under -race builds")
	}
	b := Get(512)
	Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put of the same buffer should panic")
		}
	}()
	Put(b)
}

// TestConcurrentGetPut hammers the pool from many goroutines; run under
// the race detector (make race) it proves Get/Put handoffs are clean.
func TestConcurrentGetPut(t *testing.T) {
	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sizes := []int{512, 1485, 4096, 16 << 10}
			for i := 0; i < rounds; i++ {
				n := sizes[(w+i)%len(sizes)]
				b := Get(n)
				if len(b) != n {
					t.Errorf("len %d, want %d", len(b), n)
					return
				}
				// Exclusive ownership: concurrent writes to pooled buffers
				// are a data race unless each buffer has one owner.
				for j := 0; j < len(b); j += 128 {
					b[j] = byte(w)
				}
				for j := 0; j < len(b); j += 128 {
					if b[j] != byte(w) {
						t.Errorf("buffer shared between owners")
						return
					}
				}
				Put(b)
			}
		}(w)
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Ring-segment pool (GetSeg / PutSeg — internal/kernel elastic rings)
// ---------------------------------------------------------------------------

func TestSegShapeAndReuse(t *testing.T) {
	b := GetSeg()
	if len(b) != SegSize || cap(b) != SegSize {
		t.Fatalf("GetSeg: len %d cap %d, want %d", len(b), cap(b), SegSize)
	}
	PutSeg(b)
	// Round-trip again: a segment that went through the pool comes back
	// full-length regardless of whether sync.Pool retained it (GC may
	// evict between Put and Get, so reuse itself is not asserted).
	b = GetSeg()
	if len(b) != SegSize || cap(b) != SegSize {
		t.Fatalf("GetSeg after PutSeg: len %d cap %d, want %d", len(b), cap(b), SegSize)
	}
	PutSeg(b)
}

func TestSegCountersBalance(t *testing.T) {
	g0, p0 := SegGets(), SegPuts()
	var segs [][]byte
	for i := 0; i < 32; i++ {
		segs = append(segs, GetSeg())
	}
	if got := SegOutstanding(); got < 32 {
		t.Fatalf("outstanding %d with 32 segments held", got)
	}
	for _, s := range segs {
		PutSeg(s)
	}
	if got := SegGets() - g0; got != 32 {
		t.Fatalf("seg gets %d, want 32", got)
	}
	if got := SegPuts() - p0; got != 32 {
		t.Fatalf("seg puts %d, want 32", got)
	}
}

func TestPutSegForeignBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PutSeg of a wrong-capacity buffer should panic")
		}
	}()
	PutSeg(make([]byte, 100))
}

// TestSegPoisonAndDoublePut extends the -race ownership checks to ring
// segments: a view retained across PutSeg reads poison, and returning
// the same segment twice panics — the failure modes an elastic ring bug
// (releasing a segment still referenced by an iovec view) would hit.
func TestSegPoisonAndDoublePut(t *testing.T) {
	if !RaceChecked {
		t.Skip("poisoning is compiled in only under -race builds")
	}
	b := GetSeg()
	for i := range b {
		b[i] = 0x5A
	}
	stale := b
	PutSeg(b)
	for i, v := range stale {
		if v != Poison {
			t.Fatalf("stale segment view byte %d = %#x, want poison %#x", i, v, Poison)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second PutSeg of the same segment should panic")
		}
	}()
	PutSeg(stale)
}

func TestSegConcurrentGetPut(t *testing.T) {
	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b := GetSeg()
				for j := 0; j < len(b); j += 128 {
					b[j] = byte(w)
				}
				for j := 0; j < len(b); j += 128 {
					if b[j] != byte(w) {
						t.Errorf("segment shared between owners")
						return
					}
				}
				PutSeg(b)
			}
		}(w)
	}
	wg.Wait()
}
