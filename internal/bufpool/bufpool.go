// Package bufpool provides size-classed byte-buffer free lists over
// sync.Pool for the runtime's hot paths: httpd connection read buffers
// and disk-chunk staging, the Apache baseline's buffers, and the TCP
// stack's wire-encode buffers.
//
// The paper's argument (§4, §5.2) is that an application-level runtime
// wins benchmarks because it controls every hot path; handing each
// connection's buffers to the garbage collector gives part of that win
// back. Pooling changes only memory reuse — never the virtual clock or
// the trace shape — so deterministic replays are unaffected.
//
// Ownership rules (see DESIGN.md "Performance"):
//   - Get returns a buffer owned exclusively by the caller.
//   - Put transfers ownership back; the caller must not retain any view
//     of the buffer afterwards. Under -race builds the pool poisons
//     returned buffers and panics on double puts to catch violations.
//   - Buffers whose lifetime is unbounded (cache entries, iovec views
//     still queued) must NOT be pooled — let the GC own them.
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hybrid/internal/stats"
)

// classSizes are the pooled capacities, smallest first. Get rounds up to
// the nearest class; requests beyond the largest class fall through to
// plain allocation. The classes cover the repository's buffer shapes:
// 4 KiB connection read buffers, 16 KiB disk chunks, and wire segments
// (MSS + header, under 2 KiB on the simulated Ethernet).
var classSizes = [...]int{512, 2 << 10, 4 << 10, 16 << 10, 64 << 10}

// Poison is the byte -race builds write over every returned buffer, so
// a reader holding a view across Put sees nonsense instead of
// plausibly-stale data (see poison_race.go).
const Poison = 0xDB

type class struct {
	size int
	pool sync.Pool // holds *[]byte boxes with a live buffer inside
}

var classes [len(classSizes)]class

// boxes recycles the *[]byte headers that carry buffers in and out of
// the class pools, so a Get/Put cycle allocates nothing in steady state.
var boxes = sync.Pool{New: func() any { return new([]byte) }}

var (
	gets   atomic.Uint64 // Get calls
	puts   atomic.Uint64 // Put calls
	misses atomic.Uint64 // Gets not served from a pool (fresh allocation)
)

func init() {
	for i, n := range classSizes {
		classes[i].size = n
	}
}

// classFor returns the smallest class with size >= n, or nil when n is
// larger than every class.
func classFor(n int) *class {
	for i := range classes {
		if n <= classes[i].size {
			return &classes[i]
		}
	}
	return nil
}

// Get returns a buffer of length n. Its capacity is the class size, so
// subslices of the form b[:m] keep the capacity Put uses to find the
// class again.
func Get(n int) []byte {
	gets.Add(1)
	c := classFor(n)
	if c == nil {
		misses.Add(1)
		return make([]byte, n)
	}
	if v := c.pool.Get(); v != nil {
		bp := v.(*[]byte)
		b := *bp
		*bp = nil
		boxes.Put(bp)
		trackGet(b)
		return b[:n]
	}
	misses.Add(1)
	b := make([]byte, n, c.size)
	return b
}

// Put returns a buffer obtained from Get to its class. The buffer may
// have been resliced to a shorter length but must share the original
// backing array from its start (cap(b) must still be the class size).
// Buffers larger than every class (served by plain allocation) are
// dropped for the GC. Put of a buffer that is not from this pool panics:
// pooling a foreign buffer would poison memory someone else owns.
func Put(b []byte) {
	puts.Add(1)
	if cap(b) == 0 {
		panic("bufpool: Put of empty buffer")
	}
	c := classForCap(cap(b))
	if c == nil {
		if cap(b) > classSizes[len(classSizes)-1] {
			return // oversize one-off allocation; GC owns it
		}
		panic(fmt.Sprintf("bufpool: Put of foreign buffer (cap %d is no class size)", cap(b)))
	}
	b = b[:cap(b)]
	trackPut(b) // race builds: double-put check + poison
	bp := boxes.Get().(*[]byte)
	*bp = b
	c.pool.Put(bp)
}

// classForCap returns the class whose size is exactly c, or nil.
func classForCap(c int) *class {
	for i := range classes {
		if classes[i].size == c {
			return &classes[i]
		}
	}
	return nil
}

// SegSize is the fixed size of an elastic ring segment: the chunk
// granularity of the kernel sim's socket and pipe buffers (see
// internal/kernel/pipe.go). 4 KiB matches the paper's pipe capacity, so
// a FIFO pipe is exactly one segment and a default socket ring at most
// sixteen.
const SegSize = 4096

// segs is the ring-segment free list. It is deliberately separate from
// the size classes above even though a class of the same capacity
// exists: segments are the highest-churn pool in the system (every byte
// through every simulated socket crosses one), and giving them their own
// pool and counters keeps the kernel's buffer-memory telemetry
// (segment_gets / segment_puts / segment_misses in kernel Metrics())
// untangled from httpd read buffers and disk chunks sharing the 4 KiB
// class.
var segs = class{size: SegSize}

var (
	segGets   atomic.Uint64
	segPuts   atomic.Uint64
	segMisses atomic.Uint64
)

// GetSeg returns one ring segment (len and cap SegSize), owned
// exclusively by the caller until PutSeg.
func GetSeg() []byte {
	segGets.Add(1)
	if v := segs.pool.Get(); v != nil {
		bp := v.(*[]byte)
		b := *bp
		*bp = nil
		boxes.Put(bp)
		trackGet(b)
		return b
	}
	segMisses.Add(1)
	return make([]byte, SegSize)
}

// PutSeg returns a segment obtained from GetSeg. The same ownership
// rules as Put apply: no view of the segment may be retained, and under
// -race builds the segment is poisoned and double puts panic.
func PutSeg(b []byte) {
	if cap(b) != SegSize {
		panic(fmt.Sprintf("bufpool: PutSeg of foreign buffer (cap %d, want %d)", cap(b), SegSize))
	}
	segPuts.Add(1)
	b = b[:SegSize]
	trackPut(b)
	bp := boxes.Get().(*[]byte)
	*bp = b
	segs.pool.Put(bp)
}

// SegGets reports the number of GetSeg calls.
func SegGets() uint64 { return segGets.Load() }

// SegPuts reports the number of PutSeg calls.
func SegPuts() uint64 { return segPuts.Load() }

// SegMisses reports GetSegs served by a fresh allocation.
func SegMisses() uint64 { return segMisses.Load() }

// SegOutstanding reports segments handed out and not yet returned —
// exactly the allocated buffer memory (in SegSize units) of every
// elastic ring in the process.
func SegOutstanding() int64 { return int64(segGets.Load()) - int64(segPuts.Load()) }

// Gets reports the number of Get calls.
func Gets() uint64 { return gets.Load() }

// Puts reports the number of Put calls.
func Puts() uint64 { return puts.Load() }

// Misses reports Gets served by a fresh allocation instead of a pooled
// buffer (cold pool, or a request beyond the largest class).
func Misses() uint64 { return misses.Load() }

// Outstanding reports Get calls not yet matched by a Put — buffers the
// callers still own. A steady-state leak shows up as monotonic growth.
func Outstanding() int64 { return int64(gets.Load()) - int64(puts.Load()) }

var (
	metricsOnce sync.Once
	metrics     *stats.Registry
)

// Metrics returns the pool's stats registry (gets / puts / misses
// counters and the outstanding gauge), for merging into -stats output.
func Metrics() *stats.Registry {
	metricsOnce.Do(func() {
		metrics = stats.NewRegistry()
		metrics.CounterFunc("gets", Gets)
		metrics.CounterFunc("puts", Puts)
		metrics.CounterFunc("misses", Misses)
		metrics.GaugeFunc("outstanding", Outstanding)
		metrics.CounterFunc("segment_gets", SegGets)
		metrics.CounterFunc("segment_puts", SegPuts)
		metrics.CounterFunc("segment_misses", SegMisses)
		metrics.GaugeFunc("segment_outstanding", SegOutstanding)
	})
	return metrics
}
