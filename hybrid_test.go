package hybrid_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hybrid"
)

// These tests exercise the public facade exactly as a downstream user
// would; the exhaustive suites live with the internal packages.

func TestFacadeQuickstart(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 2})
	defer rt.Shutdown()
	var count atomic.Int64
	rt.Run(hybrid.ForN(100, func(i int) hybrid.M[hybrid.Unit] {
		return hybrid.Fork(hybrid.Seq(
			hybrid.Yield(),
			hybrid.Do(func() { count.Add(1) }),
		))
	}))
	if count.Load() != 100 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestFacadeBindAndMap(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	var got int
	rt.Run(hybrid.Bind(
		hybrid.Map(hybrid.Return(20), func(x int) int { return x * 2 }),
		func(x int) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { got = x + 2 })
		},
	))
	if got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestFacadeExceptions(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	boom := errors.New("boom")
	var handled atomic.Bool
	rt.Run(hybrid.Catch(
		hybrid.Then(hybrid.Throw[hybrid.Unit](boom), hybrid.Skip),
		func(err error) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { handled.Store(errors.Is(err, boom)) })
		},
	))
	if !handled.Load() {
		t.Fatal("exception not handled through facade")
	}
}

func TestFacadeMVarAndChan(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 2})
	defer rt.Shutdown()
	v := hybrid.NewMVar[string]()
	ch := hybrid.NewChan[int](2)
	var s atomic.Value
	var n atomic.Int64
	rt.Run(hybrid.Seq(
		hybrid.Fork(v.Put("ping")),
		hybrid.Fork(ch.Send(9)),
		hybrid.Bind(v.Take(), func(x string) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { s.Store(x) })
		}),
		hybrid.Bind(ch.Recv(), func(x int) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { n.Store(int64(x)) })
		}),
	))
	if s.Load() != "ping" || n.Load() != 9 {
		t.Fatalf("mvar=%v chan=%d", s.Load(), n.Load())
	}
}

func TestFacadeVirtualClockSleep(t *testing.T) {
	clk := hybrid.NewVirtualClock()
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	rt.Run(hybrid.Sleep(clk, 250*time.Millisecond))
	if got := time.Duration(clk.Now()); got != 250*time.Millisecond {
		t.Fatalf("virtual now = %v", got)
	}
}

func TestFacadeBuildTrace(t *testing.T) {
	tr := hybrid.BuildTrace(hybrid.Seq(hybrid.Yield(), hybrid.Skip))
	if tr == nil {
		t.Fatal("nil trace")
	}
}

func TestFacadeSuspendResume(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	var got atomic.Int64
	rt.Run(hybrid.Bind(
		hybrid.Suspend(func(resume func(int)) { resume(77) }),
		func(x int) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { got.Store(int64(x)) })
		},
	))
	if got.Load() != 77 {
		t.Fatalf("got %d", got.Load())
	}
}

func TestFacadeLoopsAndCombinators(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	var log []int
	i := 0
	rt.Run(hybrid.Seq(
		hybrid.ForEach([]int{1, 2, 3}, func(x int) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { log = append(log, x) })
		}),
		hybrid.While(
			hybrid.NBIO(func() bool { return i < 2 }),
			hybrid.Do(func() { i++; log = append(log, 10+i) }),
		),
		hybrid.Bind(
			hybrid.FoldN(4, 0, func(j, acc int) hybrid.M[int] { return hybrid.Return(acc + j) }),
			func(sum int) hybrid.M[hybrid.Unit] {
				return hybrid.Do(func() { log = append(log, sum) })
			},
		),
		hybrid.Loop(hybrid.NBIO(func() bool {
			log = append(log, 99)
			return len(log) < 8
		})),
	))
	want := []int{1, 2, 3, 11, 12, 6, 99, 99}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestFacadeBlioAndNBIOe(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1, BlioWorkers: 1})
	defer rt.Shutdown()
	var blioRan, caught atomic.Bool
	rt.Run(hybrid.Seq(
		hybrid.Bind(hybrid.Blio(func() int { blioRan.Store(true); return 5 }),
			func(int) hybrid.M[hybrid.Unit] { return hybrid.Skip }),
		hybrid.Catch(
			hybrid.Then(hybrid.NBIOe(func() (int, error) { return 0, errors.New("x") }), hybrid.Skip),
			func(error) hybrid.M[hybrid.Unit] { return hybrid.Do(func() { caught.Store(true) }) },
		),
		hybrid.Catch(
			hybrid.Then(hybrid.Blioe(func() (int, error) { return 0, errors.New("y") }), hybrid.Skip),
			func(error) hybrid.M[hybrid.Unit] { return hybrid.Skip },
		),
	))
	if !blioRan.Load() || !caught.Load() {
		t.Fatalf("blio=%v caught=%v", blioRan.Load(), caught.Load())
	}
}

func TestFacadeHaltAndOnException(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	var cleanup, after atomic.Bool
	rt.Run(hybrid.Seq(
		hybrid.Fork(hybrid.Catch(
			hybrid.Then(
				hybrid.OnException(
					hybrid.Throw[hybrid.Unit](errors.New("boom")),
					hybrid.Do(func() { cleanup.Store(true) }),
				),
				hybrid.Skip,
			),
			func(error) hybrid.M[hybrid.Unit] { return hybrid.Skip },
		)),
		hybrid.Fork(hybrid.Seq(hybrid.Halt[hybrid.Unit](), hybrid.Do(func() { after.Store(true) }))),
	))
	if !cleanup.Load() {
		t.Fatal("OnException handler did not run")
	}
	if after.Load() {
		t.Fatal("code after Halt ran")
	}
}

func TestFacadeFirstOfAndTimeout(t *testing.T) {
	clk := hybrid.NewVirtualClock()
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	var winner atomic.Int64
	var timedOut atomic.Bool
	done := make(chan struct{})
	rt.Spawn(hybrid.Seq(
		hybrid.Bind(
			hybrid.FirstOf(
				hybrid.Then(hybrid.Sleep(clk, 5*time.Millisecond), hybrid.Return(5)),
				hybrid.Then(hybrid.Sleep(clk, 50*time.Millisecond), hybrid.Return(50)),
			),
			func(x int) hybrid.M[hybrid.Unit] { return hybrid.Do(func() { winner.Store(int64(x)) }) },
		),
		hybrid.Catch(
			hybrid.Then(
				hybrid.Timeout(clk, time.Millisecond, hybrid.Suspend(func(func(int)) {})),
				hybrid.Skip,
			),
			func(err error) hybrid.M[hybrid.Unit] {
				return hybrid.Do(func() { timedOut.Store(errors.Is(err, hybrid.ErrTimedOut)) })
			},
		),
		hybrid.Do(func() { close(done) }),
	))
	<-done
	if winner.Load() != 5 {
		t.Fatalf("winner = %d", winner.Load())
	}
	if !timedOut.Load() {
		t.Fatal("Timeout did not raise ErrTimedOut")
	}
}

func TestFacadeSemaphoreWaitGroup(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 2})
	defer rt.Shutdown()
	sem := hybrid.NewSemaphore(1)
	wg := hybrid.NewWaitGroup(3)
	var count atomic.Int64
	rt.Run(hybrid.Seq(
		hybrid.ForN(3, func(int) hybrid.M[hybrid.Unit] {
			return hybrid.Fork(hybrid.Seq(
				sem.Acquire(),
				hybrid.Do(func() { count.Add(1) }),
				sem.Release(),
				wg.Done(),
			))
		}),
		wg.Wait(),
	))
	if count.Load() != 3 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestFacadeMutexTryLockAndWithLock(t *testing.T) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	m := hybrid.NewMutex()
	var ok atomic.Bool
	rt.Run(hybrid.Seq(
		m.WithLock(hybrid.Skip),
		hybrid.Bind(m.TryLock(), func(got bool) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { ok.Store(got) })
		}),
		m.Unlock(),
	))
	if !ok.Load() {
		t.Fatal("TryLock on free mutex failed")
	}
}
