// fig17disk regenerates Figure 17, the disk head-scheduling test: random
// 4 KB reads from a 1 GB file by N concurrent threads, hybrid runtime
// (AIO) vs the NPTL baseline (blocking pread), on the calibrated disk
// model. The NPTL column stops at its 16 K-thread stack budget, as in the
// paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybrid/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced read volume (shape only)")
	maxThreads := flag.Int("max-threads", 65536, "largest thread count")
	flag.Parse()

	cfg := bench.DefaultFig17()
	if *quick {
		cfg = bench.Fig17Quick()
	}
	var counts []int
	for n := 1; n <= *maxThreads; n *= 4 {
		counts = append(counts, n)
	}
	fmt.Println("Figure 17: disk head scheduling (throughput vs working threads)")
	fmt.Printf("file=%dMB total-read=%dMB block=%dB\n\n",
		cfg.FileBytes>>20, cfg.TotalReadBytes>>20, cfg.BlockBytes)
	pts := bench.Fig17(cfg, counts)
	bench.PrintSeries(os.Stdout, "threads", pts, "Hybrid (AIO)", "NPTL (pread)")
}
