// fig17disk regenerates Figure 17, the disk head-scheduling test: random
// 4 KB reads from a 1 GB file by N concurrent threads, hybrid runtime
// (AIO) vs the NPTL baseline (blocking pread), on the calibrated disk
// model. The NPTL column stops at its 16 K-thread stack budget, as in the
// paper.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"hybrid/internal/bench"
	"hybrid/internal/faults"
)

func main() {
	quick := flag.Bool("quick", false, "reduced read volume (shape only)")
	maxThreads := flag.Int("max-threads", 65536, "largest thread count")
	emitStats := flag.Bool("stats", false, "emit a JSON stats block per hybrid run")
	faultSpec := flag.String("faults", "",
		"deterministic fault plan for the hybrid runs: seed=N,rate=R[,<op>=R]")
	supervise := flag.Bool("supervise", false,
		"run hybrid reader threads under supervision: an exhausted read kills the thread and the supervisor restarts it (pairs with -faults)")
	realtime := flag.Bool("realtime", false,
		"also run the NPTL baseline column; its kernel threads race on the host scheduler, so output is not byte-reproducible")
	flag.Parse()

	cfg := bench.DefaultFig17()
	if *quick {
		cfg = bench.Fig17Quick()
	}
	fcfg, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig17disk:", err)
		os.Exit(2)
	}
	cfg.Faults = fcfg
	var counts []int
	for n := 1; n <= *maxThreads; n *= 4 {
		counts = append(counts, n)
	}
	fmt.Println("Figure 17: disk head scheduling (throughput vs working threads)")
	fmt.Printf("file=%dMB total-read=%dMB block=%dB\n",
		cfg.FileBytes>>20, cfg.TotalReadBytes>>20, cfg.BlockBytes)
	if cfg.Faults.Active() {
		fmt.Printf("faults: %s (hybrid runs only)\n", *faultSpec)
	}
	hybrid := bench.Fig17HybridStats
	if *supervise {
		hybrid = bench.Fig17HybridSupervised
		fmt.Println("supervision: on (dead reader threads restart; see supervise.* in -stats)")
	}
	fmt.Println()
	// The NPTL baseline runs kernel threads whose disk-arrival order is
	// host-scheduled, so its column varies run to run; it only prints under
	// -realtime, keeping default output byte-for-byte reproducible.
	nptl := func(n int) float64 { return math.NaN() }
	if *realtime {
		nptl = func(n int) float64 { return bench.Fig17NPTL(cfg, n) }
	}
	printSeries := func(pts []bench.Point) {
		if *realtime {
			bench.PrintSeries(os.Stdout, "threads", pts, "Hybrid (AIO)", "NPTL (pread)")
		} else {
			bench.PrintHybridSeries(os.Stdout, "threads", pts, "Hybrid (AIO)")
		}
	}
	if !*emitStats {
		pts := make([]bench.Point, 0, len(counts))
		for _, n := range counts {
			mbps, _ := hybrid(cfg, n)
			pts = append(pts, bench.Point{X: n, Hybrid: mbps, NPTL: nptl(n)})
		}
		printSeries(pts)
		return
	}
	pts := make([]bench.Point, 0, len(counts))
	runs := make([]bench.RunStats, 0, len(counts))
	for _, n := range counts {
		mbps, snap := hybrid(cfg, n)
		pts = append(pts, bench.Point{X: n, Hybrid: mbps, NPTL: nptl(n)})
		runs = append(runs, bench.RunStats{
			Figure: "fig17", System: "hybrid", X: n, MBps: mbps, Stats: snap,
		})
	}
	printSeries(pts)
	fmt.Println()
	for _, rs := range runs {
		if err := bench.WriteRunStats(os.Stdout, rs); err != nil {
			panic(err)
		}
	}
}
