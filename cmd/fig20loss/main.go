// fig20loss regenerates Figure 20, the loss-recovery comparison: one
// connection transfers a fixed payload over a 10 Mbps / 2 ms WAN while an
// exact seed-derived set of data packets is dropped, at loss rates from 0
// to 5%, for each recovery variant — plain Reno (the legacy
// fast-retransmit/RTO machine), NewReno partial-ACK recovery, SACK with
// Reno congestion control, and SACK with CUBIC. Every variant loses
// exactly the same original packets, so the curves isolate recovery
// behavior. All time is virtual: the table is byte-for-byte reproducible
// at any GOMAXPROCS.
package main

import (
	"flag"
	"fmt"

	"hybrid/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "smaller transfer and fewer trials")
	trials := flag.Int("trials", 0, "override trials per cell (0 keeps the configuration's count)")
	flag.Parse()

	cfg := bench.DefaultFig20()
	if *quick {
		cfg = bench.Fig20Quick()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}

	fmt.Println("Figure 20: goodput vs loss rate (loss recovery variants)")
	fmt.Printf("transfer=%dKB trials=%d link=10Mbps/2ms (goodput in MB/s of virtual time)\n",
		cfg.TransferBytes>>10, cfg.Trials)
	fmt.Println()
	fmt.Printf("%-7s %10s %10s %10s %10s\n", "loss%", "reno", "newreno", "sack-reno", "sack-cubic")
	for _, p := range bench.Fig20Loss(cfg) {
		fmt.Printf("%-7.1f %10.4f %10.4f %10.4f %10.4f\n",
			float64(p.LossPermille)/10,
			p.Goodput["reno"], p.Goodput["newreno"],
			p.Goodput["sack-reno"], p.Goodput["sack-cubic"])
	}
}
