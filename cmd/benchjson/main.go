// benchjson runs the repository's performance benchmarks and writes the
// machine-readable trajectory files BENCH_fig17.json, BENCH_fig19.json,
// BENCH_fig20.json, and BENCH_fig21.json (one bench.RunStats object per
// run, concatenated). Each record carries
// the deterministic virtual-time throughput plus the wall-clock side —
// wall ms, wall MB/s, virtual-time p99, and for the microbenchmarks the
// -benchmem triple (ns/op, B/op, allocs/op) — so later PRs can prove
// perf changes against the committed baseline instead of asserting them.
//
// Figure runs use the quick configurations: the trajectory tracks the
// cost of simulating a fixed deterministic workload, not the figures'
// full-scale curves.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hybrid/internal/bench"
)

func main() {
	label := flag.String("label", "dev", "trajectory label recorded on every row")
	fig17Path := flag.String("fig17", "BENCH_fig17.json", "output file for Figure 17 rows")
	fig19Path := flag.String("fig19", "BENCH_fig19.json", "output file for Figure 19 + micro rows")
	fig20Path := flag.String("fig20", "BENCH_fig20.json", "output file for Figure 20 rows")
	fig21Path := flag.String("fig21", "BENCH_fig21.json", "output file for Figure 21 rows")
	fig22Path := flag.String("fig22", "BENCH_fig22.json", "output file for Figure 22 rows")
	corePath := flag.String("core", "BENCH_core.json", "output file for monadic-core trampoline rows")
	appendOut := flag.Bool("append", false, "append to the output files instead of truncating")
	microOnly := flag.Bool("micro-only", false, "run only the Go microbenchmarks")
	flag.Parse()

	var fig17Rows, fig19Rows, fig20Rows, fig21Rows, fig22Rows []bench.RunStats

	if !*microOnly {
		// Figure 17 (quick): disk head scheduling at three thread counts.
		cfg17 := bench.Fig17Quick()
		for _, n := range []int{1, 64, 4096} {
			start := time.Now()
			mbps, _ := bench.Fig17HybridStats(cfg17, n)
			wall := time.Since(start)
			fig17Rows = append(fig17Rows, bench.RunStats{
				Figure: "fig17", System: "hybrid", Label: *label, X: n, MBps: mbps,
				WallMS:   float64(wall.Microseconds()) / 1e3,
				WallMBps: float64(cfg17.TotalReadBytes) / float64(bench.MB) / wall.Seconds(),
			})
			fmt.Printf("fig17 hybrid threads=%-5d %7.3f MB/s (virtual)  wall %v\n", n, mbps, wall.Round(time.Millisecond))
		}

		// Figure 19 (quick): the web server under the disk-intensive and
		// the mostly-cached workload, with per-request latency measured.
		for _, w := range []struct {
			name   string
			cached bool
		}{{"hybrid-disk", false}, {"hybrid-cached", true}} {
			// Quick shape, but 16x the requests: the wall-clock side of a
			// row needs a seconds-scale run to be comparable across PRs.
			cfg19 := bench.Fig19Quick()
			cfg19.TotalRequests = 8192
			cfg19.Cached = w.cached
			start := time.Now()
			p := bench.Fig19HybridPerf(cfg19, 64)
			wall := time.Since(start)
			fig19Rows = append(fig19Rows, bench.RunStats{
				Figure: "fig19", System: w.name, Label: *label, X: 64, MBps: p.MBps,
				P99Us:    p.P99Us,
				WallMS:   float64(wall.Microseconds()) / 1e3,
				WallMBps: float64(p.Bytes) / float64(bench.MB) / wall.Seconds(),
			})
			fmt.Printf("fig19 %-14s conns=64 %7.3f MB/s (virtual)  p99 %dus  wall %v  %.1f MB/s (wall)\n",
				w.name, p.MBps, p.P99Us, wall.Round(time.Millisecond),
				float64(p.Bytes)/float64(bench.MB)/wall.Seconds())
		}

		// Worker scaling (quick): wall throughput of the cached workload
		// at rising worker counts, shared queue and stealing. Speedup is
		// relative to each mode's own Workers=1 run, so the rows compare
		// across machines even though absolute wall MB/s does not.
		cfgScale := bench.Fig19Quick()
		cfgScale.TotalRequests = 4096
		for _, stealing := range []bool{false, true} {
			system := "hybrid"
			if stealing {
				system = "hybrid-stealing"
			}
			for _, p := range bench.Fig19Scaling(cfgScale, 64, []int{1, 2, 4}, stealing) {
				fig19Rows = append(fig19Rows, bench.RunStats{
					Figure: "fig19-scaling", System: system, Label: *label,
					X: p.Workers, MBps: p.VirtMBps,
					WallMS: p.WallMS, WallMBps: p.WallMBps, Speedup: p.Speedup,
				})
				fmt.Printf("fig19-scaling %-16s workers=%d %7.3f MB/s (virtual)  wall %.0fms  %.1f MB/s (wall)  %.2fx\n",
					system, p.Workers, p.VirtMBps, p.WallMS, p.WallMBps, p.Speedup)
			}
		}
		// Figure 20: loss-recovery goodput. The full configuration, not the
		// quick one — its virtual transfers cost milliseconds of wall time,
		// and the committed rows are the figure's claim (SACK variants
		// dominating plain Reno under loss), so they use the figure's scale.
		// Unlike the fig17/fig19 rows there is no wall-clock column: every
		// number is virtual, so regenerating the file with the same label
		// must reproduce it byte-for-byte.
		cfg20 := bench.DefaultFig20()
		for _, pm := range cfg20.LossPermille {
			for _, v := range bench.Fig20Variants {
				mbps := bench.Fig20Cell(cfg20, v, pm)
				fig20Rows = append(fig20Rows, bench.RunStats{
					Figure: "fig20", System: v, Label: *label, X: pm, MBps: mbps,
				})
				fmt.Printf("fig20 %-11s loss=%.1f%% %7.4f MB/s (virtual)\n",
					v, float64(pm)/10, mbps)
			}
		}
		// Figure 21: good-client goodput under attack, defenses off vs on.
		// Full configuration, all virtual (like fig20): the committed rows
		// are the figure's claim — slot-pinning attacks collapse the
		// undefended server while the lifecycle deadlines hold goodput at
		// the baseline — and regenerating with the same label reproduces
		// them byte-for-byte. X is the attacker count.
		cfg21 := bench.DefaultFig21()
		for _, mode := range bench.Fig21Modes {
			for _, defended := range []bool{false, true} {
				p := bench.Fig21Run(cfg21, mode, defended)
				system := mode + "-off"
				if defended {
					system = mode + "-on"
				}
				fig21Rows = append(fig21Rows, bench.RunStats{
					Figure: "fig21", System: system, Label: *label,
					X: cfg21.Attackers, MBps: p.GoodputMBps, P99Us: p.P99Us,
				})
				fmt.Printf("fig21 %-14s %8.3f MB/s (virtual)  p99 %dus  sheds %d\n",
					system, p.GoodputMBps, p.P99Us, p.Sheds.Total())
			}
		}
		// Figure 22: the million-connection capacity sweep, full scale —
		// the committed rows are the capstone capacity claim, including
		// the 1M-connection row. The virtual columns (MBps, P99Us) are
		// deterministic; BytesPerConn reads the Go allocator and plays
		// the role the wall-clock columns do in fig17/fig19: the
		// machine-local cost side of the trajectory. X is the parked
		// fleet size.
		cfg22 := bench.DefaultFig22()
		for _, n := range cfg22.Conns {
			start := time.Now()
			p := bench.Fig22Run(cfg22, n)
			wall := time.Since(start)
			fig22Rows = append(fig22Rows, bench.RunStats{
				Figure: "fig22", System: "hybrid", Label: *label,
				X: p.Conns, MBps: p.GoodputMBps, P99Us: p.P99Us,
				BytesPerConn: p.ParkedBytesPerConn,
				WallMS:       float64(wall.Microseconds()) / 1e3,
			})
			fmt.Printf("fig22 conns=%-8d %8.1f B/conn parked  %7.3f MB/s (virtual)  p99 %dus  wall %v\n",
				p.Conns, p.ParkedBytesPerConn, p.GoodputMBps, p.P99Us, wall.Round(time.Millisecond))
		}
	}

	// Go microbenchmarks: the allocation trajectory of the hot paths.
	for _, m := range bench.Micros() {
		rs := bench.RunMicro(m, *label)
		fig19Rows = append(fig19Rows, rs)
		fmt.Println(bench.FormatMicro(rs))
	}

	// Monadic-core trampoline rows: the fused/naive steps-per-second pair,
	// kept in their own trajectory file so the continuation-flattening
	// delta is visible across PRs without digging through the fig19 rows.
	var coreRows []bench.RunStats
	for _, m := range bench.CoreMicros() {
		rs := bench.RunMicro(m, *label)
		rs.Figure = "core"
		coreRows = append(coreRows, rs)
		fmt.Println(bench.FormatMicro(rs))
	}

	writeRows(*fig17Path, fig17Rows, *appendOut)
	writeRows(*fig19Path, fig19Rows, *appendOut)
	writeRows(*fig20Path, fig20Rows, *appendOut)
	writeRows(*fig21Path, fig21Rows, *appendOut)
	writeRows(*fig22Path, fig22Rows, *appendOut)
	writeRows(*corePath, coreRows, *appendOut)
}

func writeRows(path string, rows []bench.RunStats, appendOut bool) {
	if len(rows) == 0 {
		return
	}
	flags := os.O_CREATE | os.O_WRONLY
	if appendOut {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer f.Close()
	for _, rs := range rows {
		if err := bench.WriteRunStats(f, rs); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d rows to %s\n", len(rows), path)
}
