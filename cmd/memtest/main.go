// memtest reproduces the paper's §5.1 memory-consumption experiment:
// launch millions of monadic threads and measure live heap per thread
// after garbage collection. The paper runs ten million threads at 48
// bytes each on a 2 GB machine; pass -threads to choose the scale.
//
// Pass -conns to additionally measure bytes per established server
// connection — parked (idle keep-alive, handler waiting on the next
// head with an armed timer-wheel deadline) versus active (blocked
// mid-response against a peer that stopped reading) — the first
// capacity measurement for the C10M target. Each figure covers the
// whole simulated connection: both socket ring buffers plus the client
// and handler threads.
//
// Pass -budget to turn the parked measurement into a gate: the process
// exits non-zero when parked bytes/conn exceeds the budget. CI runs
// this as a blocking leg so a change that re-eagers buffer allocation
// (the old flat rings cost 137.7 KB/conn; the elastic rings release
// every segment at park) fails the build rather than the next capacity
// experiment.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybrid/internal/bench"
)

func main() {
	threads := flag.Int("threads", 1_000_000, "number of monadic threads to park")
	sweep := flag.Bool("sweep", false, "sweep 10k/100k/1M/10M instead of a single point")
	conns := flag.Int("conns", 0, "also measure bytes/connection for this many parked and active server connections")
	budget := flag.Float64("budget", 0, "fail (exit 1) if parked bytes/conn exceeds this budget (0 = no gate)")
	flag.Parse()

	counts := []int{*threads}
	if *sweep {
		counts = []int{10_000, 100_000, 1_000_000, 10_000_000}
	}
	fmt.Println("Memory consumption of parked monadic threads (paper §5.1;")
	fmt.Println("the paper measures 48 bytes/thread for 10M Haskell threads)")
	fmt.Printf("%-12s %16s %14s\n", "threads", "bytes/thread", "total")
	for _, n := range counts {
		p := bench.MemTest(n)
		fmt.Printf("%-12d %16.1f %11.1f MB\n",
			p.Threads, p.BytesPerThread, float64(p.TotalBytes)/(1<<20))
	}
	if *conns > 0 {
		fmt.Println()
		fmt.Println("Memory per established server connection (elastic rings release")
		fmt.Println("all buffer segments at park; threads, timers, and the handler's")
		fmt.Println("pooled read buffer are what remains)")
		p := bench.ConnMemTest(*conns)
		fmt.Printf("%-12s %16s %16s\n", "conns", "parked B/conn", "active B/conn")
		fmt.Printf("%-12d %16.1f %16.1f\n", p.Conns, p.ParkedBytesPerConn, p.ActiveBytesPerConn)
		if *budget > 0 && p.ParkedBytesPerConn > *budget {
			fmt.Printf("FAIL: parked %.1f B/conn exceeds budget %.1f B/conn\n",
				p.ParkedBytesPerConn, *budget)
			os.Exit(1)
		}
		if *budget > 0 {
			fmt.Printf("OK: parked %.1f B/conn within budget %.1f B/conn\n",
				p.ParkedBytesPerConn, *budget)
		}
	}
	os.Exit(0)
}
