// memtest reproduces the paper's §5.1 memory-consumption experiment:
// launch millions of monadic threads and measure live heap per thread
// after garbage collection. The paper runs ten million threads at 48
// bytes each on a 2 GB machine; pass -threads to choose the scale.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybrid/internal/bench"
)

func main() {
	threads := flag.Int("threads", 1_000_000, "number of monadic threads to park")
	sweep := flag.Bool("sweep", false, "sweep 10k/100k/1M/10M instead of a single point")
	flag.Parse()

	counts := []int{*threads}
	if *sweep {
		counts = []int{10_000, 100_000, 1_000_000, 10_000_000}
	}
	fmt.Println("Memory consumption of parked monadic threads (paper §5.1;")
	fmt.Println("the paper measures 48 bytes/thread for 10M Haskell threads)")
	fmt.Printf("%-12s %16s %14s\n", "threads", "bytes/thread", "total")
	for _, n := range counts {
		p := bench.MemTest(n)
		fmt.Printf("%-12d %16.1f %11.1f MB\n",
			p.Threads, p.BytesPerThread, float64(p.TotalBytes)/(1<<20))
	}
	os.Exit(0)
}
