// webserver runs the paper's case-study web server (§5.2) on the
// simulated stack and drives it with the load generator, printing a
// summary — a self-contained demonstration of the whole system: monadic
// threads, epoll and AIO event loops, the disk elevator, the cache, and
// the client workload. With -tcp the server is re-plugged onto the
// application-level TCP stack (the paper's one-line transport switch).
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"hybrid/internal/bufpool"
	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/faults"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/netsim"
	"hybrid/internal/overload"
	"hybrid/internal/prof"
	"hybrid/internal/stats"
	"hybrid/internal/tcp"
	"hybrid/internal/vclock"
)

func main() {
	files := flag.Int("files", 4096, "fileset size")
	fileKB := flag.Int("file-kb", 16, "file size in KB")
	cacheMB := flag.Int64("cache-mb", 100, "server cache in MB")
	conns := flag.Int("conns", 128, "concurrent client connections")
	requests := flag.Int("requests", 4096, "total requests")
	useTCP := flag.Bool("tcp", false, "serve over the application-level TCP stack")
	emitStats := flag.Bool("stats", false, "dump the merged metrics snapshot as JSON")
	faultSpec := flag.String("faults", "",
		"deterministic fault plan: seed=N,rate=R[,<op>=R,oneshot:<op>=K]; empty disables")
	admit := flag.Int("admit", 0,
		"admission control: bound on in-flight connections (0 disables the overload machinery)")
	shed := flag.Bool("shed", false,
		"arm a circuit breaker on the disk path: uncached GETs shed with fast 503s while it is open (requires -admit)")
	workers := flag.Int("workers", 0,
		"runtime worker count (0 keeps the default of 2)")
	stealing := flag.Bool("stealing", false, "use per-worker deques with work stealing")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *mutexProfile, *blockProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webserver:", err)
		os.Exit(2)
	}
	defer stopProf()

	fcfg, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webserver:", err)
		os.Exit(2)
	}

	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.BenchGeometry()))
	if err := loadgen.MakeFileset(fs, *files, int64(*fileKB)*1024); err != nil {
		panic(err)
	}
	nw := *workers
	if nw <= 0 {
		nw = 2
	}
	rt := core.NewRuntime(core.Options{Workers: nw, WorkStealing: *stealing, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()

	scfg := httpd.ServerConfig{CacheBytes: *cacheMB << 20}
	if *admit > 0 {
		ocfg := &httpd.OverloadConfig{MaxConns: *admit}
		if *shed {
			ocfg.Breaker = &overload.BreakerConfig{
				FailureThreshold: 5,
				Cooldown:         10 * time.Millisecond,
			}
		}
		scfg.Overload = ocfg
	} else if *shed {
		fmt.Fprintln(os.Stderr, "webserver: -shed requires -admit")
		os.Exit(2)
	}
	var in *faults.Injector
	if fcfg.Active() {
		// An active plan also arms the server's graceful-degradation
		// path: bounded retries on disk faults, 503 on a dead file.
		in = faults.New(*fcfg, clk)
		k.SetFaults(in)
		fs.Disk().SetFaults(in)
		scfg.DiskRetries = 2
	}
	srv := httpd.NewServer(io, scfg)

	if *useTCP {
		// One-line transport switch: the same server over TCP/netsim,
		// driven by monadic clients speaking HTTP over the same stack.
		runOverTCP(clk, rt, srv, in, *files, *conns, *requests, *emitStats)
		return
	}

	rt.Spawn(srv.ListenAndServe("web:80"))
	gen := loadgen.New(io, loadgen.Config{
		Addr: "web:80", Clients: *conns, Files: *files,
		RequestsPerClient: max(1, *requests / *conns),
		Seed:              1, RTT: 300 * time.Microsecond, Bandwidth: 100_000_000 / 8,
	})
	start := clk.Now()
	done := make(chan struct{})
	var end vclock.Time
	rt.Spawn(core.Then(gen.Run(), core.Do(func() {
		end = clk.Now() // capture before the idle clock races ahead
		close(done)
	})))
	<-done
	elapsed := time.Duration(end - start)

	hits, misses, _ := srv.Cache().Stats()
	d := fs.Disk().Snapshot()
	fmt.Printf("requests:        %d (errors %d)\n", gen.Requests.Load(), gen.Errors.Load())
	fmt.Printf("bytes served:    %.1f MB\n", float64(gen.Bytes.Load())/(1<<20))
	fmt.Printf("virtual elapsed: %v\n", elapsed)
	fmt.Printf("throughput:      %.3f MB/s\n",
		float64(gen.Bytes.Load())/(1<<20)/elapsed.Seconds())
	fmt.Printf("cache:           %d hits / %d misses (%.1f%% hit rate)\n",
		hits, misses, 100*float64(hits)/float64(hits+misses))
	fmt.Printf("disk:            %d requests, mean queue %.1f, head moved %d blocks\n",
		d.Requests, float64(d.TotalQueue)/float64(max64(1, d.Dispatches)), d.SeekBlocks)
	if lim := srv.Limiter(); lim != nil {
		ls := lim.Metrics().Snapshot()
		fmt.Printf("overload:        admitted %d (high-water %d/%d), shed %d, backlog rejects %d\n",
			ls.Counter("admitted"), ls["inflight"].Max, *admit,
			srv.Metrics().Snapshot().Counter("shed_fast"),
			k.Metrics().Snapshot().Counter("backlog_rejects"))
	}
	if in != nil {
		fmt.Printf("%s\n", in.Summary())
	}
	if *emitStats {
		snap := stats.Snapshot{}
		snap.Merge("sched", rt.Stats().Snapshot())
		snap.Merge("kernel", k.Metrics().Snapshot())
		snap.Merge("disk", fs.Disk().Metrics().Snapshot())
		snap.Merge("httpd", srv.Metrics().Snapshot())
		snap.Merge("bufpool", bufpool.Metrics().Snapshot())
		if lim := srv.Limiter(); lim != nil {
			snap.Merge("admission", lim.Metrics().Snapshot())
		}
		if b := srv.Breaker(); b != nil {
			snap.Merge("breaker", b.Metrics().Snapshot())
		}
		if in != nil {
			snap.Merge("faults", in.Metrics().Snapshot())
		}
		fmt.Println()
		if err := snap.WriteJSON(os.Stdout); err != nil {
			panic(err)
		}
	}
}

// runOverTCP serves and loads the same HTTP workload across the
// application-level TCP stack on a simulated Ethernet.
func runOverTCP(clk *vclock.VirtualClock, rt *core.Runtime, srv *httpd.Server, in *faults.Injector, files, conns, requests int, emitStats bool) {
	net := netsim.New(clk, 1)
	// In TCP mode the plan also reaches the wire: packet drop/dup/delay
	// on the simulated Ethernet and segment drop/reset in the stack.
	net.SetFaults(in)
	hostS, err := net.Host("server", netsim.Ethernet100())
	if err != nil {
		panic(err)
	}
	hostC, err := net.Host("client", netsim.Ethernet100())
	if err != nil {
		panic(err)
	}
	stackS := tcp.NewStack(hostS, tcp.Config{Faults: in})
	stackC := tcp.NewStack(hostC, tcp.Config{})
	l, err := stackS.Listen(80)
	if err != nil {
		panic(err)
	}
	rt.Spawn(srv.ServeTCP(l))

	per := max(1, requests/conns)
	var served, bytes, errors int64
	var mu sync.Mutex
	wg := core.NewWaitGroup(conns)
	start := clk.Now()
	for ci := 0; ci < conns; ci++ {
		ci := ci
		client := core.Bind(stackC.ConnectM("server", 80), func(c *tcp.Conn) core.M[core.Unit] {
			rng := uint64(ci)*0x9E3779B97F4A7C15 + 7
			buf := make([]byte, 8192)
			return core.Seq(
				core.ForN(per, func(int) core.M[core.Unit] {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					name := loadgen.FileName(int(rng % uint64(files)))
					req := []byte("GET /" + name + " HTTP/1.1\r\nHost: s\r\n\r\n")
					hb := &httpd.HeadBuffer{}
					readResp := func() core.M[core.Unit] {
						var loop func(remaining int64) core.M[core.Unit]
						var waitHead func() core.M[core.Unit]
						waitHead = func() core.M[core.Unit] {
							return core.Bind(c.ReadM(buf), func(n int) core.M[core.Unit] {
								if n == 0 {
									return core.Throw[core.Unit](fmt.Errorf("closed mid-response"))
								}
								return core.Bind(
									core.NBIOe(func() (string, error) { return hb.Feed(buf[:n]) }),
									func(head string) core.M[core.Unit] {
										if head == "" {
											return waitHead()
										}
										_, cl, err := httpd.ParseResponseHead(head)
										if err != nil {
											return core.Throw[core.Unit](err)
										}
										rest := int64(hb.Buffered())
										hb.Reset()
										mu.Lock()
										served++
										bytes += cl
										mu.Unlock()
										return loop(cl - rest)
									},
								)
							})
						}
						loop = func(remaining int64) core.M[core.Unit] {
							if remaining <= 0 {
								return core.Skip
							}
							want := int64(len(buf))
							if want > remaining {
								want = remaining
							}
							return core.Bind(c.ReadM(buf[:want]), func(n int) core.M[core.Unit] {
								if n == 0 {
									return core.Throw[core.Unit](fmt.Errorf("truncated body"))
								}
								return loop(remaining - int64(n))
							})
						}
						return waitHead()
					}
					return core.Then(
						core.Bind(c.WriteM(req), func(int) core.M[core.Unit] { return core.Skip }),
						readResp(),
					)
				}),
				c.CloseM(),
			)
		})
		rt.Spawn(core.Finally(
			core.Catch(client, func(error) core.M[core.Unit] {
				mu.Lock()
				errors++
				mu.Unlock()
				return core.Skip
			}),
			wg.Done(),
		))
	}
	done := make(chan struct{})
	var end vclock.Time
	// The end time must be captured inside the workload: once nothing
	// holds the virtual clock busy, it races ahead through pending
	// timers (TIME_WAIT's 2*MSL) before the main goroutine can look.
	rt.Spawn(core.Then(wg.Wait(), core.Do(func() {
		end = clk.Now()
		close(done)
	})))
	<-done
	elapsed := time.Duration(end - start)
	ss := stackS.Snapshot()
	fmt.Println("transport:       application-level TCP over simulated Ethernet")
	fmt.Printf("requests:        %d (errors %d)\n", served, errors)
	fmt.Printf("bytes served:    %.1f MB in %v virtual = %.3f MB/s\n",
		float64(bytes)/(1<<20), elapsed.Round(time.Millisecond),
		float64(bytes)/(1<<20)/elapsed.Seconds())
	fmt.Printf("tcp (server):    %d segs out, %d retransmits, %d conns\n",
		ss.SegsOut, ss.Retransmits+ss.FastRetransmits, ss.ConnsOpened)
	if in != nil {
		fmt.Printf("%s\n", in.Summary())
	}
	if emitStats {
		snap := stats.Snapshot{}
		snap.Merge("sched", rt.Stats().Snapshot())
		snap.Merge("tcp", stackS.Metrics().Snapshot())
		snap.Merge("httpd", srv.Metrics().Snapshot())
		snap.Merge("bufpool", bufpool.Metrics().Snapshot())
		if in != nil {
			snap.Merge("faults", in.Metrics().Snapshot())
		}
		fmt.Println()
		if err := snap.WriteJSON(os.Stdout); err != nil {
			panic(err)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
