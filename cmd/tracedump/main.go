// tracedump renders the trace of a monadic program as a tree, reproducing
// the paper's Figure 4: the server below forks a client per iteration, and
// forcing each node of its (lazy) trace runs the thread up to its next
// system call. The dump *is* the event abstraction — what a scheduler
// traverses.
package main

import (
	"flag"
	"fmt"
	"strings"

	"hybrid"
	"hybrid/internal/core"
)

func main() {
	depth := flag.Int("depth", 12, "number of trace nodes to force")
	flag.Parse()

	// The paper's Figure 4 program:
	//
	//	server = do { sys_call_1; fork client; server }
	//	client = do { sys_call_2 }
	client := hybrid.Do(func() {}) // sys_call_2
	var server func() hybrid.M[hybrid.Unit]
	server = func() hybrid.M[hybrid.Unit] {
		// The recursion sits inside a continuation, so the infinite
		// program is constructed lazily as the trace is forced — the
		// role lazy evaluation plays in the paper.
		return hybrid.Bind(hybrid.Do(func() {}) /* sys_call_1 */, func(hybrid.Unit) hybrid.M[hybrid.Unit] {
			return hybrid.Then(hybrid.Fork(client), server())
		})
	}

	fmt.Println("trace of: server = do { sys_call_1; fork client; server }")
	fmt.Println()
	dump(hybrid.BuildTrace(server()), 0, *depth)
}

// dump forces and prints trace nodes. Forcing an NBIO node means running
// the thread to its next system call — laziness made explicit.
func dump(tr hybrid.Trace, indent, budget int) {
	for budget > 0 {
		budget--
		pad := strings.Repeat("    ", indent)
		switch n := tr.(type) {
		case *core.NBIONode:
			fmt.Printf("%sSYS_NBIO\n", pad)
			tr = n.Effect() // force: run the thread one step
		case *core.ForkNode:
			fmt.Printf("%sSYS_FORK\n", pad)
			fmt.Printf("%s├─ child:\n", pad)
			dump(n.Child, indent+1, 2)
			fmt.Printf("%s└─ parent continues:\n", pad)
			tr = n.Cont
		case *core.YieldNode:
			fmt.Printf("%sSYS_YIELD\n", pad)
			tr = n.Cont
		case *core.RetNode:
			fmt.Printf("%sSYS_RET\n", pad)
			return
		case *core.ThrowNode:
			fmt.Printf("%sSYS_THROW(%v)\n", pad, n.Err)
			return
		case *core.CatchNode:
			fmt.Printf("%sSYS_CATCH\n", pad)
			tr = n.Body
		case *core.SuspendNode:
			fmt.Printf("%sSYS_SUSPEND (parked until an event resumes it)\n", pad)
			return
		case *core.BlioNode:
			fmt.Printf("%sSYS_BLIO\n", pad)
			tr = n.Effect()
		default:
			fmt.Printf("%s%T\n", pad, tr)
			return
		}
	}
	fmt.Printf("%s… (budget exhausted; the trace is infinite)\n", strings.Repeat("    ", indent))
}
