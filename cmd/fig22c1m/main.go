// fig22c1m regenerates Figure 22, the million-connection capacity
// figure: a fleet of parked keep-alive connections — established, one
// request served, then idle with an armed timer-wheel deadline — while
// a small background population trickles requests over the same server.
// Per sweep point it reports the live-heap bytes per parked connection
// — next to the NPTL baseline's modelled cost of one 32 KB kernel-thread
// stack per connection — and the background mix's p99 and goodput. The
// claim is the CPC one: at extreme connection counts memory is the
// binding constraint, and with elastic socket buffers (segments released
// on drain) plus a compact TCB, a parked connection costs kilobytes, not
// the 137 KB the flat rings charged — so a million of them fit where the
// NPTL column shows 32 GB of stack reservation (and a real NPTL runtime
// stops admitting threads at its 512 MB budget, four rows of magnitude
// earlier).
//
// The request columns are virtual-time deterministic: byte-identical at
// any GOMAXPROCS. The bytes/conn column reads the Go allocator, which
// is not; -det omits it (and the measurement) so the determinism gate
// can byte-diff two runs.
package main

import (
	"flag"
	"fmt"

	"hybrid/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "smaller fleet sweep and background mix")
	det := flag.Bool("det", false, "deterministic output only: skip the host-side memory measurement")
	flag.Parse()

	cfg := bench.DefaultFig22()
	if *quick {
		cfg = bench.Fig22Quick()
	}
	if *det {
		cfg.MeasureMemory = false
	}

	fmt.Println("Figure 22: parked keep-alive fleet vs background request mix")
	fmt.Printf("active=%dx%dreq files=%dx%dKB rtt=%v (goodput in MB/s of virtual time)\n",
		cfg.ActiveClients, cfg.RequestsPerClient, cfg.Files, cfg.FileBytes>>10, cfg.RTT)
	fmt.Println()
	if *det {
		fmt.Printf("%-10s %10s %8s %10s %12s\n",
			"conns", "requests", "errors", "p99", "MB/s")
	} else {
		fmt.Printf("%-10s %16s %14s %12s %10s %8s %10s %12s\n",
			"conns", "parked B/conn", "nptl B/conn", "nptl fleet", "requests", "errors", "p99", "MB/s")
	}
	for _, n := range cfg.Conns {
		p := bench.Fig22Run(cfg, n)
		if *det {
			fmt.Printf("%-10d %10d %8d %8dus %12.3f\n",
				p.Conns, p.Requests, p.Errors, p.P99Us, p.GoodputMBps)
		} else {
			fmt.Printf("%-10d %16.1f %14.0f %11.2fGB %10d %8d %8dus %12.3f\n",
				p.Conns, p.ParkedBytesPerConn, p.NPTLModelBytesPerConn,
				p.NPTLModelBytesPerConn*float64(p.Conns)/float64(1<<30),
				p.Requests, p.Errors, p.P99Us, p.GoodputMBps)
		}
	}
}
