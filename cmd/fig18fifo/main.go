// fig18fifo regenerates Figure 18, the FIFO-pipe scalability test: 128
// pairs of active threads exchanging 32 KB messages through 4 KB pipes
// while up to 100 K idle threads wait for epoll events that never come.
// This benchmark is CPU/memory-bound and runs on the wall clock; expect
// absolute MB/s to reflect the host machine, and the curves' flatness to
// reflect the systems.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybrid/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "fewer pairs and rounds (shape only)")
	maxIdle := flag.Int("max-idle", 100_000, "largest idle-thread count")
	flag.Parse()

	cfg := bench.DefaultFig18()
	if *quick {
		cfg = bench.Fig18Quick()
	}
	counts := []int{0}
	for n := 100; n <= *maxIdle; n *= 10 {
		counts = append(counts, n)
	}
	fmt.Println("Figure 18: FIFO pipe throughput vs idle threads (wall clock)")
	fmt.Printf("pairs=%d message=%dKB pipe=%dB rounds=%d\n\n",
		cfg.Pairs, cfg.MessageBytes>>10, cfg.PipeBytes, cfg.Rounds)
	pts := bench.Fig18(cfg, counts)
	bench.PrintSeries(os.Stdout, "idle", pts, "Hybrid (epoll)", "NPTL (blocking)")
}
