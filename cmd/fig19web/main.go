// fig19web regenerates Figure 19, the web-server comparison: clients
// request random 16 KB files from a 128K-file set; the hybrid server
// (monadic threads + AIO + 100 MB application cache) is compared with the
// Apache stand-in (thread-per-connection blocking server whose page cache
// is squeezed by kernel-thread stacks). -cached runs the paper's
// mostly-cached variant instead.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"hybrid/internal/bench"
	"hybrid/internal/faults"
	"hybrid/internal/prof"
)

func main() {
	quick := flag.Bool("quick", false, "smaller fileset and request count")
	cached := flag.Bool("cached", false, "mostly-cached working set (§5.2 text)")
	maxConns := flag.Int("max-conns", 1024, "largest connection count")
	emitStats := flag.Bool("stats", false, "emit a JSON stats block per hybrid run")
	faultSpec := flag.String("faults", "",
		"deterministic fault plan for the hybrid runs: seed=N,rate=R[,<op>=R]")
	overloadMode := flag.Bool("overload", false,
		"run the overload table instead: goodput and p99 at 1x/2x/4x offered load, protection off and on")
	overloadConns := flag.Int("overload-conns", 64, "capacity point (admission bound) for -overload")
	workers := flag.Int("workers", 0,
		"hybrid runtime worker count (0 keeps the default single deterministic worker)")
	scalingMode := flag.Bool("scaling", false,
		"run the worker-scaling table instead: cached-workload wall throughput at 1/2/4/8 workers")
	scalingConns := flag.Int("scaling-conns", 64, "connection count for -scaling")
	stealing := flag.Bool("stealing", false, "use per-worker deques with work stealing")
	realtime := flag.Bool("realtime", false,
		"also run the Apache-like baseline column; its kernel threads race on the host scheduler, so output is not byte-reproducible")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *mutexProfile, *blockProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig19web:", err)
		os.Exit(2)
	}
	defer stopProf()

	cfg := bench.DefaultFig19()
	if *quick {
		cfg = bench.Fig19Quick()
	}
	cfg.Cached = *cached
	cfg.Workers = *workers
	cfg.WorkStealing = *stealing
	fcfg, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig19web:", err)
		os.Exit(2)
	}
	cfg.Faults = fcfg
	if *scalingMode {
		runScalingTable(cfg, *scalingConns, *stealing, *emitStats)
		return
	}
	if *overloadMode {
		runOverloadTable(cfg, *overloadConns, *emitStats)
		return
	}
	var counts []int
	for n := 1; n <= *maxConns; n *= 4 {
		counts = append(counts, n)
	}
	label := "disk-intensive"
	if *cached {
		label = "mostly-cached"
	}
	fmt.Printf("Figure 19: web server under %s load (throughput vs connections)\n", label)
	fmt.Printf("files=%d×%dKB cache=%dMB requests=%d\n",
		cfg.Files, cfg.FileBytes>>10, cfg.CacheBytes>>20, cfg.TotalRequests)
	if cfg.Faults.Active() {
		fmt.Printf("faults: %s (hybrid runs only; Apache baseline is fault-free)\n", *faultSpec)
	}
	fmt.Println()
	// The Apache-like baseline spawns one kernel thread per connection;
	// both the spawn race and the threads' disk-arrival order follow the
	// host scheduler, so its column varies run to run. It only prints under
	// -realtime, keeping default output byte-for-byte reproducible.
	apache := func(n int) float64 { return math.NaN() }
	if *realtime {
		apache = func(n int) float64 { return bench.Fig19Apache(cfg, n) }
	}
	printSeries := func(pts []bench.Point) {
		if *realtime {
			bench.PrintSeries(os.Stdout, "connections", pts, "Hybrid server", "Apache-like")
		} else {
			bench.PrintHybridSeries(os.Stdout, "connections", pts, "Hybrid server")
		}
	}
	if !*emitStats {
		pts := make([]bench.Point, 0, len(counts))
		for _, n := range counts {
			pts = append(pts, bench.Point{X: n, Hybrid: bench.Fig19Hybrid(cfg, n), NPTL: apache(n)})
		}
		printSeries(pts)
		return
	}
	pts := make([]bench.Point, 0, len(counts))
	runs := make([]bench.RunStats, 0, len(counts))
	for _, n := range counts {
		mbps, snap := bench.Fig19HybridStats(cfg, n)
		pts = append(pts, bench.Point{X: n, Hybrid: mbps, NPTL: apache(n)})
		runs = append(runs, bench.RunStats{
			Figure: "fig19", System: "hybrid", X: n, MBps: mbps, Stats: snap,
		})
	}
	printSeries(pts)
	fmt.Println()
	for _, rs := range runs {
		if err := bench.WriteRunStats(os.Stdout, rs); err != nil {
			panic(err)
		}
	}
}

// runScalingTable prints the multicore companion to the figure: the same
// cached workload simulated at increasing worker counts, reporting the
// wall-clock throughput of the simulation itself. Virtual throughput at
// Workers=1 is the determinism anchor — byte-identical across runs at any
// GOMAXPROCS. At Workers>1 intra-timestamp interleaving depends on which
// worker drains which thread, so virtual numbers may shift slightly with
// the worker count (wall speedup is what the table is for).
func runScalingTable(cfg bench.Fig19Config, conns int, stealing bool, emitStats bool) {
	mode := "shared queue"
	if stealing {
		mode = "work stealing"
	}
	fmt.Printf("Figure 19 (scaling): wall throughput vs workers, cached workload, %s\n", mode)
	fmt.Printf("files=%d×%dKB cache=%dMB requests=%d conns=%d\n",
		cfg.Files, cfg.FileBytes>>10, cfg.CacheBytes>>20, cfg.TotalRequests, conns)
	fmt.Println()
	fmt.Printf("%-8s %14s %12s %14s %8s\n",
		"workers", "virtual MB/s", "wall ms", "wall MB/s", "speedup")
	// -workers narrows the table to {1, N}: the baseline plus the point,
	// so one invocation still yields a speedup. Unset runs the full sweep.
	counts := []int{1, 2, 4, 8}
	if cfg.Workers == 1 {
		counts = []int{1}
	} else if cfg.Workers > 1 {
		counts = []int{1, cfg.Workers}
	}
	pts := bench.Fig19Scaling(cfg, conns, counts, stealing)
	for _, p := range pts {
		fmt.Printf("%-8d %14.3f %12.1f %14.1f %7.2fx\n",
			p.Workers, p.VirtMBps, p.WallMS, p.WallMBps, p.Speedup)
	}
	if !emitStats {
		return
	}
	fmt.Println()
	system := "hybrid"
	if stealing {
		system = "hybrid-stealing"
	}
	for _, p := range pts {
		if err := bench.WriteRunStats(os.Stdout, bench.RunStats{
			Figure: "fig19-scaling", System: system, X: p.Workers,
			MBps: p.VirtMBps, WallMS: p.WallMS, WallMBps: p.WallMBps,
			Speedup: p.Speedup, Stats: p.Stats,
		}); err != nil {
			panic(err)
		}
	}
}

// runOverloadTable prints the overload companion to the figure: the
// hybrid server held at a fixed capacity while the offered load is
// multiplied past it, with and without the overload machinery.
func runOverloadTable(cfg bench.Fig19Config, conns int, emitStats bool) {
	fmt.Printf("Figure 19 (overload): goodput and p99 vs offered load, capacity %d conns\n", conns)
	fmt.Printf("files=%d×%dKB cache=%dMB requests=%d per 1x\n",
		cfg.Files, cfg.FileBytes>>10, cfg.CacheBytes>>20, cfg.TotalRequests)
	fmt.Println()
	fmt.Printf("%-8s %-11s %13s %12s %8s %8s %9s\n",
		"offered", "protection", "goodput MB/s", "p99", "errors", "shed", "rejects")
	runs := bench.Fig19OverloadTable(cfg, conns, []int{1, 2, 4})
	for _, r := range runs {
		prot := "off"
		if r.Protected {
			prot = "on"
		}
		fmt.Printf("%-8s %-11s %13.2f %12v %8d %8d %9d\n",
			fmt.Sprintf("%dx", r.OfferedX), prot, r.GoodputMBps, r.P99,
			r.Errors, r.Shed, r.Snapshot.Counter("kernel.backlog_rejects"))
	}
	if !emitStats {
		return
	}
	fmt.Println()
	for _, r := range runs {
		system := "unprotected"
		if r.Protected {
			system = "protected"
		}
		if err := bench.WriteRunStats(os.Stdout, bench.RunStats{
			Figure: "fig19-overload", System: system, X: r.OfferedX,
			MBps: r.GoodputMBps, Stats: r.Snapshot,
		}); err != nil {
			panic(err)
		}
	}
}
