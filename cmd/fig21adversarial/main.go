// fig21adversarial regenerates Figure 21, the adversarial-robustness
// contest: a fixed population of well-behaved closed-loop clients shares
// a connection-limited server with a fleet of hostile clients (slowloris
// header trickle, idle flood, read-stall, connection churn), and each
// attack runs twice — connection-lifecycle defenses off, then on. The
// attackers alone can pin every connection slot, so with defenses off the
// slot-pinning attacks collapse the good clients' goodput several-fold;
// with the timer-wheel deadlines armed it holds at the no-attack
// baseline. All time is virtual: the table is byte-for-byte reproducible
// at any GOMAXPROCS.
package main

import (
	"flag"
	"fmt"

	"hybrid/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "smaller populations and a shorter horizon")
	flag.Parse()

	cfg := bench.DefaultFig21()
	if *quick {
		cfg = bench.Fig21Quick()
	}

	fmt.Println("Figure 21: good-client goodput under attack (lifecycle defenses off vs on)")
	fmt.Printf("good=%dx%dreq attackers=%d maxconns=%d files=%dx%dKB horizon=%v (goodput in MB/s of virtual time)\n",
		cfg.GoodClients, cfg.SessionRequests, cfg.Attackers, cfg.MaxConns,
		cfg.Files, cfg.FileBytes>>10, cfg.Horizon)
	fmt.Println()
	fmt.Printf("%-11s %12s %12s %10s %10s %8s %10s\n",
		"attack", "off MB/s", "on MB/s", "off p99", "on p99", "sheds", "recovered")
	var base float64
	for _, mode := range bench.Fig21Modes {
		off := bench.Fig21Run(cfg, mode, false)
		on := bench.Fig21Run(cfg, mode, true)
		if mode == "none" {
			base = off.GoodputMBps
		}
		recovered := "-"
		if base > 0 {
			recovered = fmt.Sprintf("%.1f%%", 100*on.GoodputMBps/base)
		}
		fmt.Printf("%-11s %12.3f %12.3f %9dus %9dus %8d %10s\n",
			mode, off.GoodputMBps, on.GoodputMBps, off.P99Us, on.P99Us,
			on.Sheds.Total(), recovered)
	}
}
