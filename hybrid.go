// Package hybrid is a Go reproduction of Li & Zdancewic, "Combining
// Events And Threads For Scalable Network Services" (PLDI 2007): an
// application-level concurrency library in which per-client code is
// written as extremely lightweight monadic threads while the runtime is a
// fully programmable event-driven system.
//
// A thread is a value of type M[Unit] built from Return/Bind and the
// system calls (NBIO, Fork, Yield, Throw/Catch, Suspend, Blio, …); its
// runtime representation is a Trace — a data structure of system-call
// nodes that the scheduler's event loops traverse, park, queue, and
// resume. This package re-exports the concurrency core from
// internal/core; the substrates (simulated kernel, disk and network
// models, the application-level TCP stack, the web server, and the
// benchmark harnesses for the paper's figures) live in the internal/
// packages and are demonstrated by the programs under examples/ and cmd/.
//
// A minimal program:
//
//	rt := hybrid.NewRuntime(hybrid.Options{Workers: 2})
//	defer rt.Shutdown()
//	rt.Run(hybrid.ForN(10, func(i int) hybrid.M[hybrid.Unit] {
//		return hybrid.Fork(hybrid.Seq(
//			hybrid.Do(func() { fmt.Println("hello from thread", i) }),
//			hybrid.Yield(),
//		))
//	}))
package hybrid

import (
	"hybrid/internal/core"
	"hybrid/internal/stats"
	"hybrid/internal/vclock"
)

// Core types.
type (
	// M is the CPS concurrency monad: a computation producing an A.
	M[A any] = core.M[A]
	// Unit is the result of effect-only computations.
	Unit = core.Unit
	// Trace is the run-time representation of a thread: the event
	// abstraction schedulers traverse.
	Trace = core.Trace
	// Runtime is the event-driven scheduler system.
	Runtime = core.Runtime
	// Options configures a Runtime.
	Options = core.Options
	// TCB is a thread control block.
	TCB = core.TCB
	// PanicError wraps a Go panic trapped inside a thread effect.
	PanicError = core.PanicError
)

// Observability (the stats layer; see Runtime.Stats).
type (
	// Stats is a registry of a subsystem's metrics.
	Stats = stats.Registry
	// StatsSnapshot is a frozen, mergeable view of one or more
	// registries, serializable with WriteJSON.
	StatsSnapshot = stats.Snapshot
)

// BlioInline disables the blocking-I/O worker pool: Blio effects run
// inline on the scheduler's event loop (Options.BlioWorkers sentinel).
const BlioInline = core.BlioInline

// Clock abstractions (real and virtual time domains).
type (
	// Clock abstracts real and virtual time.
	Clock = vclock.Clock
	// VirtualClock is the deterministic discrete-event clock.
	VirtualClock = vclock.VirtualClock
	// RealClock is wall-clock time.
	RealClock = vclock.RealClock
)

// NewRuntime starts an event-driven runtime with the given options.
func NewRuntime(opts Options) *Runtime { return core.NewRuntime(opts) }

// NewVirtualClock creates a deterministic simulation clock.
func NewVirtualClock() *VirtualClock { return vclock.NewVirtual() }

// NewRealClock creates a wall-clock Clock.
func NewRealClock() *RealClock { return vclock.NewReal() }

// Monad operations.

// Return lifts a value into the monad.
func Return[A any](x A) M[A] { return core.Return(x) }

// Bind sequentially composes m with f.
func Bind[A, B any](m M[A], f func(A) M[B]) M[B] { return core.Bind(m, f) }

// Then sequences two computations, discarding the first result.
func Then[A, B any](m M[A], n M[B]) M[B] { return core.Then(m, n) }

// Map applies a pure function to a computation's result.
func Map[A, B any](m M[A], f func(A) B) M[B] { return core.Map(m, f) }

// Seq sequences unit computations.
func Seq(ms ...M[Unit]) M[Unit] { return core.Seq(ms...) }

// Skip does nothing.
var Skip = core.Skip

// Loop combinators (stack-safe).

// Loop repeats body while it returns true.
func Loop(body M[bool]) M[Unit] { return core.Loop(body) }

// Forever repeats body until the thread halts or throws.
func Forever(body M[Unit]) M[Unit] { return core.Forever(body) }

// ForN runs body(0..n-1) in order.
func ForN(n int, body func(i int) M[Unit]) M[Unit] { return core.ForN(n, body) }

// ForEach runs body over a slice in order.
func ForEach[A any](xs []A, body func(A) M[Unit]) M[Unit] { return core.ForEach(xs, body) }

// While repeats body while cond yields true.
func While(cond M[bool], body M[Unit]) M[Unit] { return core.While(cond, body) }

// FoldN threads an accumulator through n iterations.
func FoldN[A any](n int, acc A, body func(i int, acc A) M[A]) M[A] {
	return core.FoldN(n, acc, body)
}

// System calls (the paper's sys_* operations).

// NBIO performs a nonblocking effect on the event loop (sys_nbio).
func NBIO[A any](f func() A) M[A] { return core.NBIO(f) }

// NBIOe performs a nonblocking effect whose error is raised as an
// exception.
func NBIOe[A any](f func() (A, error)) M[A] { return core.NBIOe(f) }

// Do runs a side effect.
func Do(f func()) M[Unit] { return core.Do(f) }

// Fork spawns a new thread (sys_fork).
func Fork(child M[Unit]) M[Unit] { return core.Fork(child) }

// Yield reschedules the current thread (sys_yield).
func Yield() M[Unit] { return core.Yield() }

// Halt terminates the current thread (sys_ret).
func Halt[A any]() M[A] { return core.Halt[A]() }

// Throw raises an exception (sys_throw).
func Throw[A any](err error) M[A] { return core.Throw[A](err) }

// Catch installs an exception handler around body (sys_catch).
func Catch[A any](body M[A], handler func(error) M[A]) M[A] {
	return core.Catch(body, handler)
}

// Finally runs cleanup after body, on success or exception.
func Finally[A any](body M[A], cleanup M[Unit]) M[A] { return core.Finally(body, cleanup) }

// OnException runs handler's effects if body throws, then re-raises.
func OnException[A any](body M[A], handler M[Unit]) M[A] {
	return core.OnException(body, handler)
}

// Suspend parks the thread until an external event resumes it: the
// generic scheduling hook behind every blocking interface.
func Suspend[A any](register func(resume func(A))) M[A] { return core.Suspend(register) }

// Blio performs a blocking effect on the blocking-I/O pool (sys_blio).
func Blio[A any](f func() A) M[A] { return core.Blio(f) }

// Blioe is Blio with monadic error handling.
func Blioe[A any](f func() (A, error)) M[A] { return core.Blioe(f) }

// Sleep suspends the thread for d on clk.
func Sleep(clk Clock, d vclock.Duration) M[Unit] { return core.Sleep(clk, d) }

// BuildTrace converts a thread into its trace (the paper's build_trace).
func BuildTrace(m M[Unit]) Trace { return core.BuildTrace(m) }

// FirstOf races two computations in forked threads and yields the first
// outcome; the loser runs to completion unobserved (no cancellation).
func FirstOf[A any](a, b M[A]) M[A] { return core.FirstOf(a, b) }

// Timeout bounds m with a deadline on clk, raising ErrTimedOut if it
// expires first.
func Timeout[A any](clk Clock, d vclock.Duration, m M[A]) M[A] {
	return core.Timeout(clk, d, m)
}

// ErrTimedOut is raised by Timeout at its deadline.
var ErrTimedOut = core.ErrTimedOut

// Synchronization primitives (§4.7).
type (
	// Mutex is a fair blocking lock for monadic threads.
	Mutex = core.Mutex
	// MVar is Concurrent Haskell's one-place buffer.
	MVar[A any] = core.MVar[A]
	// Chan is a bounded FIFO channel between threads.
	Chan[A any] = core.Chan[A]
	// Semaphore is a counting semaphore.
	Semaphore = core.Semaphore
	// WaitGroup waits for a set of threads.
	WaitGroup = core.WaitGroup
)

// NewMutex returns an unlocked Mutex.
func NewMutex() *Mutex { return core.NewMutex() }

// NewMVar returns an empty MVar.
func NewMVar[A any]() *MVar[A] { return core.NewMVar[A]() }

// NewFullMVar returns an MVar holding x.
func NewFullMVar[A any](x A) *MVar[A] { return core.NewFullMVar(x) }

// NewChan returns a channel with the given capacity.
func NewChan[A any](capacity int) *Chan[A] { return core.NewChan[A](capacity) }

// NewSemaphore returns a semaphore with the given permits.
func NewSemaphore(permits int) *Semaphore { return core.NewSemaphore(permits) }

// NewWaitGroup returns a WaitGroup expecting n Done calls.
func NewWaitGroup(n int) *WaitGroup { return core.NewWaitGroup(n) }
