GO ?= go

.PHONY: tier1 build vet test race

# tier1 is the repository's gate: everything must build, vet clean, and
# pass tests, with the race detector over the concurrency-heavy packages.
tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/stm/...
