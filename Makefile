GO ?= go

.PHONY: tier1 build vet test race race-smp determinism tcp-conformance mem-budget core-alloc tier2 stress overload-stress adversarial-smoke fuzz-smoke bench bench-smoke profile

# tier1 is the repository's gate: everything must build, vet clean, and
# pass tests, with the race detector over the concurrency-heavy packages.
tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/stm/... \
		./internal/tcp/ ./internal/httpd/ ./internal/bufpool/ \
		./internal/kernel/

# race-smp repeats the race leg with GOMAXPROCS pinned to 4 so parallel
# dispatch (sharded kernel, batched epoll, stealing deques, the clock's
# epoch barrier) is exercised with real preemption interleavings even on
# wide CI machines. The bench package is included since the epoch-barrier
# clock: its determinism tests now assert reproducibility under real
# parallelism rather than assuming a single-P schedule.
race-smp:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/core/... \
		./internal/kernel/ ./internal/hio/ ./internal/vclock/ \
		./internal/bench/

# determinism is the figure-reproducibility gate: each figure CLI runs
# twice at GOMAXPROCS=4 and the outputs must be byte-identical. This is
# the end-to-end check of the epoch-barrier clock — virtual-time runs
# have no host-scheduled actor left, so real parallelism must not move a
# single byte of the default (hybrid-only) figure output. The -realtime
# baseline columns are excluded by construction: kernel-thread arrival
# order at the disk follows the host scheduler.
determinism:
	GOMAXPROCS=4 $(GO) run ./cmd/fig17disk -quick > det_fig17_a.tmp
	GOMAXPROCS=4 $(GO) run ./cmd/fig17disk -quick > det_fig17_b.tmp
	cmp det_fig17_a.tmp det_fig17_b.tmp
	GOMAXPROCS=4 $(GO) run ./cmd/fig19web -quick > det_fig19_a.tmp
	GOMAXPROCS=4 $(GO) run ./cmd/fig19web -quick > det_fig19_b.tmp
	cmp det_fig19_a.tmp det_fig19_b.tmp
	GOMAXPROCS=4 $(GO) run ./cmd/fig20loss -quick > det_fig20_a.tmp
	GOMAXPROCS=4 $(GO) run ./cmd/fig20loss -quick > det_fig20_b.tmp
	cmp det_fig20_a.tmp det_fig20_b.tmp
	GOMAXPROCS=4 $(GO) run ./cmd/fig21adversarial -quick > det_fig21_a.tmp
	GOMAXPROCS=4 $(GO) run ./cmd/fig21adversarial -quick > det_fig21_b.tmp
	cmp det_fig21_a.tmp det_fig21_b.tmp
	GOMAXPROCS=4 $(GO) run ./cmd/fig22c1m -quick -det > det_fig22_a.tmp
	GOMAXPROCS=4 $(GO) run ./cmd/fig22c1m -quick -det > det_fig22_b.tmp
	cmp det_fig22_a.tmp det_fig22_b.tmp
	rm -f det_fig17_a.tmp det_fig17_b.tmp det_fig19_a.tmp det_fig19_b.tmp \
		det_fig20_a.tmp det_fig20_b.tmp det_fig21_a.tmp det_fig21_b.tmp \
		det_fig22_a.tmp det_fig22_b.tmp
	@echo "determinism: fig17/fig19/fig20/fig21/fig22 output byte-identical across GOMAXPROCS=4 runs"

# tcp-conformance replays every packet-trace scenario against its
# committed golden twice, under the race detector at GOMAXPROCS=4: the
# traces are asserted byte-identical to the goldens, run-to-run, and
# across real parallelism — any change to retransmission order, SACK
# blocks, ACK generation, or cwnd arithmetic fails the leg with a diff.
tcp-conformance:
	GOMAXPROCS=4 $(GO) test -race -count=2 ./internal/tcp/tracecheck/

# mem-budget is the blocking per-connection memory gate: establish 16384
# parked keep-alive connections and fail if live heap per connection
# exceeds 9216 bytes (the ROADMAP's 8 KB idle-connection target plus 1 KB
# of slack for runtime noise). The elastic rings put the measured figure
# around 6.7 KB; a change that re-eagers buffer allocation — the old flat
# rings cost 137.7 KB/conn — fails here instead of in the next capacity
# experiment.
mem-budget:
	$(GO) run ./cmd/memtest -threads 1000 -conns 16384 -budget 9216

# core-alloc is the blocking fast-path allocation gate: AllocsPerRun pins
# only, no timing, so it cannot flake on machine speed. It holds the
# continuation-flattening line — fused Loop/ForN/RepeatN iterations at
# zero allocations, the cached-GET serve loop within its per-request
# budget — so a change that quietly re-introduces per-iteration closure
# or node allocation fails here, not in the next perf investigation.
core-alloc:
	$(GO) test -run 'Alloc' -count=1 ./internal/core/ ./internal/bench/ ./internal/httpd/

# tier2 is the extended, non-gating suite (~30s): the randomized
# scheduler stress tests under the race detector, the seeded overload
# smoke (a 4× load burst through admission control and the circuit
# breaker, replayed for counter determinism), the seeded adversarial
# smoke (a hostile fleet whose attack mode is drawn from the seed,
# contesting a hardened slot-limited server against good clients,
# replayed for shed/reap counter determinism), plus a short fuzz smoke
# over every fuzz target. Failures print the seed to replay
# (STRESS_SEED=<seed> make stress / overload-stress / adversarial-smoke).
tier2: stress overload-stress adversarial-smoke fuzz-smoke

stress:
	$(GO) test -race -run 'Stress' -count=1 ./internal/core/

overload-stress:
	$(GO) test -race -run 'StressOverload' -count=1 -v ./internal/httpd/

adversarial-smoke:
	$(GO) test -race -run 'StressAdversarial' -count=1 -v ./internal/loadgen/

fuzz-smoke:
	$(GO) test -run FuzzParseRequest -fuzz FuzzParseRequest -fuzztime 5s ./internal/httpd/
	$(GO) test -run FuzzHeadBuffer -fuzz FuzzHeadBuffer -fuzztime 5s ./internal/httpd/
	$(GO) test -run FuzzParseResponseHead -fuzz FuzzParseResponseHead -fuzztime 5s ./internal/httpd/
	$(GO) test -run FuzzVecModel -fuzz FuzzVecModel -fuzztime 5s ./internal/iovec/
	$(GO) test -run FuzzVecSliceBounds -fuzz FuzzVecSliceBounds -fuzztime 5s ./internal/iovec/
	$(GO) test -run FuzzVectorWriterEquivalence -fuzz FuzzVectorWriterEquivalence -fuzztime 5s ./internal/httpd/
	$(GO) test -run FuzzBufpoolRoundtrip -fuzz FuzzBufpoolRoundtrip -fuzztime 5s ./internal/bufpool/
	$(GO) test -run FuzzSackRanges -fuzz FuzzSackRanges -fuzztime 5s ./internal/tcp/
	$(GO) test -run FuzzSegmentRoundtrip -fuzz FuzzSegmentRoundtrip -fuzztime 5s ./internal/tcp/
	$(GO) test -run FuzzFusedEquivalence -fuzz FuzzFusedEquivalence -fuzztime 5s ./internal/core/

# bench is the reproducible performance harness: the quick Figure 17/19
# configurations, the full Figure 20 loss-recovery sweep, the full
# Figure 21 adversarial contest, the full Figure 22 million-connection
# capacity sweep, and the hot-path Go microbenchmarks with -benchmem,
# written as machine-readable rows to BENCH_fig17.json/BENCH_fig19.json/
# BENCH_fig20.json/BENCH_fig21.json/BENCH_fig22.json, with the
# monadic-core trampoline pair in BENCH_core.json (BENCH_LABEL tags
# the rows; -append preserves the committed trajectory — run
# `$(GO) run ./cmd/benchjson -h` for one-off layouts).
BENCH_LABEL ?= dev

bench:
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -append
	$(GO) test -run '^$$' -bench . -benchmem -count=1 ./internal/bench/

# bench-smoke is the CI-sized slice: every benchmark runs once (catching
# bit-rot), the allocation-budget pins diff allocs/op against the
# checked-in bounds, and the microbenchmark rows land in
# BENCH_smoke.json for artifact upload — the committed trajectory files
# are never rewritten.
# (-run '^$' keeps -benchtime=1x away from the testing.Benchmark-backed
# budget test, which needs a full-length run to amortize setup)
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem -count=1 ./internal/bench/
	$(GO) test -run 'Alloc' -count=1 ./internal/bench/ ./internal/httpd/ ./internal/stats/
	$(GO) run ./cmd/benchjson -micro-only -label smoke -fig19 BENCH_smoke.json -core BENCH_smoke_core.json
	$(GO) run ./cmd/fig19web -quick -scaling -workers 4 -stats > SCALING_smoke.txt
	$(GO) run ./cmd/fig19web -quick -scaling -workers 4 -stealing -stats >> SCALING_smoke.txt
	cat SCALING_smoke.txt
	@echo "— committed fig19-scaling baseline rows (BENCH_fig19.json) —"
	@awk '/^\{/{buf=""} {buf=buf $$0 "\n"} /^\}/{if (buf ~ /"fig19-scaling"/ && (buf ~ /"pr5-multicore"/ || buf ~ /"pr6-/)) printf "%s", buf}' BENCH_fig19.json

# profile captures pprof CPU/mutex/block profiles of the cached quick
# workload at 4 workers, for inspecting the contention delta of scheduler
# or kernel changes (`go tool pprof mutex.pprof`).
PROFILE_WORKERS ?= 4

profile:
	$(GO) run ./cmd/fig19web -quick -cached -workers $(PROFILE_WORKERS) \
		-cpuprofile cpu.pprof -mutexprofile mutex.pprof -blockprofile block.pprof
	@echo "wrote cpu.pprof mutex.pprof block.pprof"
