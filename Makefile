GO ?= go

.PHONY: tier1 build vet test race tier2 stress overload-stress fuzz-smoke

# tier1 is the repository's gate: everything must build, vet clean, and
# pass tests, with the race detector over the concurrency-heavy packages.
tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/stm/...

# tier2 is the extended, non-gating suite (~30s): the randomized
# scheduler stress tests under the race detector, the seeded overload
# smoke (a 4× load burst through admission control and the circuit
# breaker, replayed for counter determinism), plus a short fuzz smoke
# over every fuzz target. Failures print the seed to replay
# (STRESS_SEED=<seed> make stress / make overload-stress).
tier2: stress overload-stress fuzz-smoke

stress:
	$(GO) test -race -run 'Stress' -count=1 ./internal/core/

overload-stress:
	$(GO) test -race -run 'StressOverload' -count=1 -v ./internal/httpd/

fuzz-smoke:
	$(GO) test -run FuzzParseRequest -fuzz FuzzParseRequest -fuzztime 5s ./internal/httpd/
	$(GO) test -run FuzzHeadBuffer -fuzz FuzzHeadBuffer -fuzztime 5s ./internal/httpd/
	$(GO) test -run FuzzParseResponseHead -fuzz FuzzParseResponseHead -fuzztime 5s ./internal/httpd/
	$(GO) test -run FuzzVecModel -fuzz FuzzVecModel -fuzztime 5s ./internal/iovec/
	$(GO) test -run FuzzVecSliceBounds -fuzz FuzzVecSliceBounds -fuzztime 5s ./internal/iovec/
