// Benchmarks regenerating the paper's evaluation (§5). One benchmark per
// table/figure, plus microbenchmarks and the ablations called out in
// DESIGN.md. Disk- and network-bound figures are measured in
// deterministic virtual time and reported as MB/s via ReportMetric; the
// memory table reports bytes/thread. cmd/fig* print the same series as
// full tables at paper scale.
package hybrid_test

import (
	"fmt"
	"testing"

	"hybrid"
	"hybrid/internal/bench"
	"hybrid/internal/core"
	"hybrid/internal/stm"
)

// --- MEM: §5.1 memory consumption -------------------------------------------

func BenchmarkThreadMemory(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("threads-%d", n), func(b *testing.B) {
			var last bench.MemPoint
			for i := 0; i < b.N; i++ {
				last = bench.MemTest(n)
			}
			b.ReportMetric(last.BytesPerThread, "bytes/thread")
		})
	}
}

// --- Figure 17: disk head scheduling -----------------------------------------

func BenchmarkFig17DiskHeadScheduling(b *testing.B) {
	cfg := bench.Fig17Quick()
	for _, threads := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("hybrid-threads-%d", threads), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bench.Fig17Hybrid(cfg, threads)
			}
			b.ReportMetric(mbps, "MB/s")
		})
		b.Run(fmt.Sprintf("nptl-threads-%d", threads), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bench.Fig17NPTL(cfg, threads)
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// --- Figure 18: FIFO pipes with idle threads ---------------------------------

func BenchmarkFig18FIFOPipes(b *testing.B) {
	cfg := bench.Fig18Quick()
	for _, idle := range []int{0, 1000, 10000} {
		b.Run(fmt.Sprintf("hybrid-idle-%d", idle), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bench.Fig18Hybrid(cfg, idle)
			}
			b.ReportMetric(mbps, "MB/s")
		})
		b.Run(fmt.Sprintf("nptl-idle-%d", idle), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bench.Fig18NPTL(cfg, idle)
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// --- Figure 19: web server under disk-intensive load -------------------------

func BenchmarkFig19WebServer(b *testing.B) {
	cfg := bench.Fig19Quick()
	for _, conns := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("hybrid-conns-%d", conns), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bench.Fig19Hybrid(cfg, conns)
			}
			b.ReportMetric(mbps, "MB/s")
		})
		b.Run(fmt.Sprintf("apache-conns-%d", conns), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bench.Fig19Apache(cfg, conns)
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// CACHED: §5.2's "mostly-cached workloads".
func BenchmarkWebServerCached(b *testing.B) {
	cfg := bench.Fig19Quick()
	cfg.Cached = true
	var mbps float64
	for i := 0; i < b.N; i++ {
		mbps = bench.Fig19Hybrid(cfg, 64)
	}
	b.ReportMetric(mbps, "MB/s")
}

// --- Microbenchmarks ----------------------------------------------------------

// BenchmarkSpawn measures thread creation + completion.
func BenchmarkSpawn(b *testing.B) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	b.ResetTimer()
	rt.Run(hybrid.ForN(b.N, func(int) hybrid.M[hybrid.Unit] {
		return hybrid.Fork(hybrid.Skip)
	}))
}

// BenchmarkYield measures one scheduler round trip.
func BenchmarkYield(b *testing.B) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	b.ResetTimer()
	rt.Run(hybrid.ForN(b.N, func(int) hybrid.M[hybrid.Unit] { return hybrid.Yield() }))
}

// BenchmarkBindChain measures raw monadic overhead without scheduling.
func BenchmarkBindChain(b *testing.B) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	b.ResetTimer()
	rt.Run(hybrid.ForN(b.N, func(int) hybrid.M[hybrid.Unit] {
		return hybrid.Bind(hybrid.Return(1), func(x int) hybrid.M[hybrid.Unit] {
			return hybrid.Map(hybrid.Return(x+1), func(int) hybrid.Unit { return hybrid.Unit{} })
		})
	}))
}

// BenchmarkMutex measures uncontended lock/unlock pairs.
func BenchmarkMutex(b *testing.B) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	m := hybrid.NewMutex()
	b.ResetTimer()
	rt.Run(hybrid.ForN(b.N, func(int) hybrid.M[hybrid.Unit] {
		return hybrid.Seq(m.Lock(), m.Unlock())
	}))
}

// BenchmarkChan measures send/recv pairs through a buffered channel.
func BenchmarkChan(b *testing.B) {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()
	ch := hybrid.NewChan[int](64)
	b.ResetTimer()
	rt.Run(hybrid.Seq(
		hybrid.Fork(hybrid.ForN(b.N, func(i int) hybrid.M[hybrid.Unit] { return ch.Send(i) })),
		hybrid.ForN(b.N, func(int) hybrid.M[hybrid.Unit] {
			return hybrid.Bind(ch.Recv(), func(int) hybrid.M[hybrid.Unit] { return hybrid.Skip })
		}),
	))
}

// BenchmarkSTM measures one transactional counter increment.
func BenchmarkSTM(b *testing.B) {
	rt := core.NewRuntime(core.Options{Workers: 1})
	defer rt.Shutdown()
	v := stm.NewTVar(0)
	b.ResetTimer()
	rt.Run(core.ForN(b.N, func(int) core.M[core.Unit] {
		return core.Then(stm.Atomically(func(tx *stm.Tx) core.Unit {
			stm.Write(tx, v, stm.Read(tx, v)+1)
			return core.Unit{}
		}), core.Skip)
	}))
}

// --- Ablations (DESIGN.md) ----------------------------------------------------

// ABL-EXC: cost of an installed (unused) handler frame per call.
func BenchmarkAblationExceptions(b *testing.B) {
	for _, depth := range []int{0, 1, 4, 16} {
		b.Run(fmt.Sprintf("catch-depth-%d", depth), func(b *testing.B) {
			rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
			defer rt.Shutdown()
			body := func() hybrid.M[hybrid.Unit] {
				m := hybrid.Do(func() {})
				for i := 0; i < depth; i++ {
					m = hybrid.Catch(m, func(error) hybrid.M[hybrid.Unit] { return hybrid.Skip })
				}
				return m
			}()
			b.ResetTimer()
			rt.Run(hybrid.ForN(b.N, func(int) hybrid.M[hybrid.Unit] { return body }))
		})
	}
}

// ABL-BATCH: scheduler batching (§4.2 "executed for a large number of
// steps before switching … to improve locality").
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, batch := range []int{1, 16, 128, 1024} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			rt := hybrid.NewRuntime(hybrid.Options{Workers: 1, BatchSteps: batch})
			defer rt.Shutdown()
			b.ResetTimer()
			rt.Run(hybrid.ForN(64, func(int) hybrid.M[hybrid.Unit] {
				return hybrid.Fork(hybrid.ForN(b.N/64+1, func(int) hybrid.M[hybrid.Unit] {
					return hybrid.NBIO(func() hybrid.Unit { return hybrid.Unit{} })
				}))
			}))
		})
	}
}

// ABL-STEAL: shared ready queue vs per-worker deques with stealing
// (§4.4's suggested improvement).
func BenchmarkAblationWorkStealing(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
		steal   bool
	}{
		{"shared-1w", 1, false},
		{"shared-4w", 4, false},
		{"steal-4w", 4, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			rt := hybrid.NewRuntime(hybrid.Options{
				Workers: mode.workers, WorkStealing: mode.steal, BatchSteps: 32,
			})
			defer rt.Shutdown()
			b.ResetTimer()
			rt.Run(hybrid.ForN(256, func(int) hybrid.M[hybrid.Unit] {
				return hybrid.Fork(hybrid.ForN(b.N/256+1, func(int) hybrid.M[hybrid.Unit] {
					return hybrid.Yield()
				}))
			}))
		})
	}
}

// ABL-ELEVATOR: the same Figure 17 workload on a FCFS disk — isolating
// the elevator as the mechanism behind the figure's rising curve.
func BenchmarkAblationElevator(b *testing.B) {
	cfg := bench.Fig17Quick()
	for _, threads := range []int{1, 256} {
		b.Run(fmt.Sprintf("clook-threads-%d", threads), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bench.Fig17Hybrid(cfg, threads)
			}
			b.ReportMetric(mbps, "MB/s")
		})
		b.Run(fmt.Sprintf("fcfs-threads-%d", threads), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = bench.Fig17HybridFCFS(cfg, threads)
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}
