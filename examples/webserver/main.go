// Static-file web server (the paper's §5.2 case study), scaled for a
// quick run: the hybrid server (monadic threads + epoll + AIO + cache)
// serves a fileset from the simulated disk to a multithreaded load
// generator, and the same run is repeated against the Apache-like
// thread-per-connection baseline for comparison.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"time"

	"hybrid/internal/core"
	"hybrid/internal/disk"
	"hybrid/internal/hio"
	"hybrid/internal/httpd"
	"hybrid/internal/kernel"
	"hybrid/internal/loadgen"
	"hybrid/internal/nptl"
	"hybrid/internal/vclock"
)

const (
	files    = 2048
	fileSize = 16 * 1024
	cacheSz  = 8 << 20
	conns    = 64
	requests = 1024
)

// run serves one full workload and returns MB/s of virtual time.
func run(name string, useApache bool) float64 {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	fs := kernel.NewFS(disk.New(clk, disk.BenchGeometry()))
	if err := loadgen.MakeFileset(fs, files, fileSize); err != nil {
		panic(err)
	}
	rt := core.NewRuntime(core.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, fs)
	defer io.Close()

	if useApache {
		nrt := nptl.New(k, fs, nptl.Config{StackTouch: -1})
		ap := httpd.NewApacheLike(nrt, k, fs, httpd.ApacheConfig{PageCacheBytes: cacheSz})
		if err := ap.ListenAndServe("web:80"); err != nil {
			panic(err)
		}
	} else {
		srv := httpd.NewServer(io, httpd.ServerConfig{CacheBytes: cacheSz})
		rt.Spawn(srv.ListenAndServe("web:80"))
	}

	gen := loadgen.New(io, loadgen.Config{
		Addr: "web:80", Clients: conns, Files: files,
		RequestsPerClient: requests / conns, Seed: 7,
		RTT: 300 * time.Microsecond, Bandwidth: 100_000_000 / 8,
	})
	start := clk.Now()
	done := make(chan struct{})
	var end vclock.Time
	rt.Spawn(core.Then(gen.Run(), core.Do(func() {
		end = clk.Now() // before the idle clock races through pending timers
		close(done)
	})))
	<-done
	elapsed := time.Duration(end - start)
	mbps := float64(gen.Bytes.Load()) / (1 << 20) / elapsed.Seconds()
	fmt.Printf("%-22s %6d requests  %8v virtual  %.3f MB/s\n",
		name, gen.Requests.Load(), elapsed.Round(time.Millisecond), mbps)
	return mbps
}

func main() {
	fmt.Printf("disk-bound web workload: %d files × %d KB, %d MB cache, %d connections\n\n",
		files, fileSize/1024, cacheSz>>20, conns)
	h := run("hybrid server", false)
	a := run("apache-like baseline", true)
	fmt.Printf("\nhybrid/apache throughput ratio: %.2fx\n", h/a)
}
