// Echo server over the application-level TCP stack (paper §4.8).
//
// The entire transport — SYN handshake, sliding windows, retransmission,
// congestion control — runs inside the process over a simulated lossy
// Ethernet, and both the server and its clients are monadic threads. Run
// it and watch every client's round trip survive 5% packet loss.
//
//	go run ./examples/echoserver
package main

import (
	"fmt"
	"time"

	"hybrid"
	"hybrid/internal/core"
	"hybrid/internal/netsim"
	"hybrid/internal/tcp"
	"hybrid/internal/vclock"
)

func main() {
	clk := vclock.NewVirtual()
	net := netsim.New(clk, 42)

	link := netsim.Ethernet100()
	link.LossProb = 0.05 // a lossy wire: TCP must retransmit

	hostS, err := net.Host("server", link)
	if err != nil {
		panic(err)
	}
	hostC, err := net.Host("client", link)
	if err != nil {
		panic(err)
	}
	cfg := tcp.Config{RTOMin: 10 * time.Millisecond, InitialRTO: 20 * time.Millisecond}
	server := tcp.NewStack(hostS, cfg)
	client := tcp.NewStack(hostC, cfg)

	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	l, err := server.Listen(7)
	if err != nil {
		panic(err)
	}

	// The accept loop forks one monadic thread per connection — the
	// paper's Figure 4 server, with the TCP stack as the event source.
	echoConn := func(c *tcp.Conn) hybrid.M[hybrid.Unit] {
		buf := make([]byte, 2048)
		return hybrid.Forever(
			hybrid.Bind(c.ReadM(buf), func(n int) hybrid.M[hybrid.Unit] {
				if n == 0 {
					return hybrid.Then(c.CloseM(), hybrid.Halt[hybrid.Unit]())
				}
				return hybrid.Then(
					hybrid.Bind(c.WriteM(buf[:n]), func(int) hybrid.M[hybrid.Unit] {
						return hybrid.Skip
					}),
					hybrid.Skip,
				)
			}),
		)
	}
	rt.Spawn(hybrid.Forever(
		hybrid.Bind(l.AcceptM(), func(c *tcp.Conn) hybrid.M[hybrid.Unit] {
			return hybrid.Fork(echoConn(c))
		}),
	))

	// Clients: each opens a connection, sends a message, and checks the
	// echo. Exceptions (reset, timeout) are caught per client.
	const clients = 8
	wg := hybrid.NewWaitGroup(clients)
	for i := 0; i < clients; i++ {
		i := i
		msg := fmt.Sprintf("hello %d over lossy tcp", i)
		prog := hybrid.Catch(
			hybrid.Bind(client.ConnectM("server", 7), func(c *tcp.Conn) hybrid.M[hybrid.Unit] {
				buf := make([]byte, len(msg))
				return hybrid.Seq(
					hybrid.Bind(c.WriteM([]byte(msg)), func(int) hybrid.M[hybrid.Unit] { return hybrid.Skip }),
					hybrid.Bind(c.ReadFullM(buf), func(n int) hybrid.M[hybrid.Unit] {
						return hybrid.Do(func() {
							fmt.Printf("client %d echoed %q at %v\n", i, buf[:n], time.Duration(clk.Now()))
						})
					}),
					c.CloseM(),
				)
			}),
			func(err error) hybrid.M[hybrid.Unit] {
				return hybrid.Do(func() { fmt.Printf("client %d failed: %v\n", i, err) })
			},
		)
		rt.Spawn(core.Finally(prog, wg.Done()))
	}
	done := make(chan struct{})
	rt.Spawn(hybrid.Then(wg.Wait(), hybrid.Do(func() { close(done) })))
	<-done

	sent, delivered, dropped, _ := net.Stats()
	s := server.Snapshot()
	fmt.Printf("\nwire: %d sent, %d delivered, %d dropped\n", sent, delivered, dropped)
	fmt.Printf("server stack: %d segs in, %d retransmits, %d fast retransmits\n",
		s.SegsIn, s.Retransmits, s.FastRetransmits)
}
