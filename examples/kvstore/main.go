// Replicated key-value store: the paper's introduction motivates the
// hybrid model with "Internet-scale data storage applications". This
// example runs a primary and two backup replicas, each an STM-backed
// store served by monadic threads over the application-level TCP stack
// on a lossy simulated network.
//
// The primary applies each SET transactionally, forwards it synchronously
// to both backups (primary-backup replication), and only then
// acknowledges the client. GETs may be served by any replica. After a
// burst of concurrent client traffic, the example verifies that all three
// replicas converged to identical state — TCP's in-order exactly-once
// stream is what makes the naive protocol correct under packet loss.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hybrid"
	"hybrid/internal/core"
	"hybrid/internal/netsim"
	"hybrid/internal/stm"
	"hybrid/internal/tcp"
	"hybrid/internal/vclock"
)

const (
	port      = 7000
	clients   = 8
	opsPerCli = 25
)

// store is one replica's state: a TVar-held map, copy-on-write so
// transactions stay pure.
type store struct {
	name string
	data *stm.TVar[map[string]string]
}

func newStore(name string) *store {
	return &store{name: name, data: stm.NewTVar(map[string]string{})}
}

func (s *store) set(key, val string) hybrid.M[hybrid.Unit] {
	return stm.Atomically(func(tx *stm.Tx) hybrid.Unit {
		old := stm.Read(tx, s.data)
		next := make(map[string]string, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
		next[key] = val
		stm.Write(tx, s.data, next)
		return hybrid.Unit{}
	})
}

func (s *store) get(key string) hybrid.M[string] {
	return stm.Atomically(func(tx *stm.Tx) string {
		return stm.Read(tx, s.data)[key]
	})
}

// The wire protocol is line-oriented: "SET k v\n" → "OK\n",
// "GET k\n" → "VAL v\n".

// readLine accumulates bytes to a newline.
func readLine(c *tcp.Conn) hybrid.M[string] {
	buf := make([]byte, 1)
	var line []byte
	var loop func() hybrid.M[string]
	loop = func() hybrid.M[string] {
		return hybrid.Bind(c.ReadM(buf), func(n int) hybrid.M[string] {
			if n == 0 {
				return hybrid.Return("") // EOF
			}
			if buf[0] == '\n' {
				return hybrid.Return(string(line))
			}
			line = append(line, buf[0])
			return loop()
		})
	}
	return loop()
}

func writeLine(c *tcp.Conn, s string) hybrid.M[hybrid.Unit] {
	return hybrid.Bind(c.WriteM([]byte(s+"\n")), func(int) hybrid.M[hybrid.Unit] {
		return hybrid.Skip
	})
}

// serve runs one replica's request loop on an accepted connection.
// forward, when non-nil, replicates SETs before acknowledging.
func serve(st *store, c *tcp.Conn, forward func(cmd string) hybrid.M[hybrid.Unit]) hybrid.M[hybrid.Unit] {
	var loop func() hybrid.M[hybrid.Unit]
	loop = func() hybrid.M[hybrid.Unit] {
		return hybrid.Bind(readLine(c), func(line string) hybrid.M[hybrid.Unit] {
			if line == "" {
				return c.CloseM()
			}
			parts := strings.SplitN(line, " ", 3)
			switch parts[0] {
			case "SET":
				if len(parts) != 3 {
					return hybrid.Then(writeLine(c, "ERR"), loop())
				}
				apply := st.set(parts[1], parts[2])
				if forward != nil {
					apply = hybrid.Seq(apply, forward(line))
				}
				return hybrid.Seq(apply, writeLine(c, "OK"), loop())
			case "GET":
				if len(parts) != 2 {
					return hybrid.Then(writeLine(c, "ERR"), loop())
				}
				return hybrid.Bind(st.get(parts[1]), func(v string) hybrid.M[hybrid.Unit] {
					return hybrid.Then(writeLine(c, "VAL "+v), loop())
				})
			default:
				return hybrid.Then(writeLine(c, "ERR"), loop())
			}
		})
	}
	return hybrid.Catch(loop(), func(error) hybrid.M[hybrid.Unit] { return hybrid.Skip })
}

func main() {
	clk := vclock.NewVirtual()
	net := netsim.New(clk, 11)
	link := netsim.Ethernet100()
	link.LossProb = 0.03

	rt := hybrid.NewRuntime(hybrid.Options{Workers: 2, Clock: clk})
	defer rt.Shutdown()
	cfg := tcp.Config{RTOMin: 10 * time.Millisecond, InitialRTO: 20 * time.Millisecond}

	mkStack := func(name string) *tcp.Stack {
		h, err := net.Host(name, link)
		if err != nil {
			panic(err)
		}
		return tcp.NewStack(h, cfg)
	}
	primary := mkStack("primary")
	backups := []*tcp.Stack{mkStack("backup-1"), mkStack("backup-2")}
	clientNet := mkStack("clients")

	stores := []*store{newStore("primary"), newStore("backup-1"), newStore("backup-2")}

	// Backups accept replication streams from the primary.
	for i, b := range backups {
		st := stores[i+1]
		l, err := b.Listen(port)
		if err != nil {
			panic(err)
		}
		rt.Spawn(hybrid.Forever(hybrid.Bind(l.AcceptM(), func(c *tcp.Conn) hybrid.M[hybrid.Unit] {
			return hybrid.Fork(serve(st, c, nil))
		})))
	}

	// The primary keeps one persistent replication connection per backup,
	// serialized by a mutex (a single replication stream).
	replConns := make([]*tcp.Conn, len(backups))
	replMu := hybrid.NewMutex()
	forward := func(cmd string) hybrid.M[hybrid.Unit] {
		return replMu.WithLock(hybrid.ForEach(replConns, func(rc *tcp.Conn) hybrid.M[hybrid.Unit] {
			return hybrid.Seq(
				writeLine(rc, cmd),
				hybrid.Bind(readLine(rc), func(string) hybrid.M[hybrid.Unit] { return hybrid.Skip }),
			)
		}))
	}

	l, err := primary.Listen(port)
	if err != nil {
		panic(err)
	}
	setup := hybrid.ForN(len(backups), func(i int) hybrid.M[hybrid.Unit] {
		return hybrid.Bind(primary.ConnectM(backups[i].Addr(), port), func(c *tcp.Conn) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { replConns[i] = c })
		})
	})
	rt.Spawn(hybrid.Seq(setup, hybrid.Forever(hybrid.Bind(l.AcceptM(), func(c *tcp.Conn) hybrid.M[hybrid.Unit] {
		return hybrid.Fork(serve(stores[0], c, forward))
	}))))

	// Concurrent clients write disjoint key ranges and read them back.
	wg := hybrid.NewWaitGroup(clients)
	var acked int
	countMu := hybrid.NewMutex()
	for ci := 0; ci < clients; ci++ {
		ci := ci
		rt.Spawn(core.Finally(hybrid.Catch(
			hybrid.Bind(clientNet.ConnectM("primary", port), func(c *tcp.Conn) hybrid.M[hybrid.Unit] {
				return hybrid.Seq(
					hybrid.ForN(opsPerCli, func(op int) hybrid.M[hybrid.Unit] {
						key := fmt.Sprintf("c%d-k%d", ci, op)
						val := fmt.Sprintf("v%d.%d", ci, op)
						return hybrid.Seq(
							writeLine(c, "SET "+key+" "+val),
							hybrid.Bind(readLine(c), func(resp string) hybrid.M[hybrid.Unit] {
								if resp != "OK" {
									return hybrid.Throw[hybrid.Unit](fmt.Errorf("SET got %q", resp))
								}
								return countMu.WithLock(hybrid.Do(func() { acked++ }))
							}),
						)
					}),
					c.CloseM(),
				)
			}),
			func(err error) hybrid.M[hybrid.Unit] {
				return hybrid.Do(func() { fmt.Printf("client %d failed: %v\n", ci, err) })
			},
		), wg.Done()))
	}

	start := clk.Now()
	done := make(chan struct{})
	var end vclock.Time
	rt.Spawn(hybrid.Then(wg.Wait(), hybrid.Do(func() {
		end = clk.Now()
		close(done)
	})))
	<-done

	// Verify convergence: all replicas hold identical state.
	snapshots := make([]map[string]string, 3)
	for i, st := range stores {
		snapshots[i] = stm.ReadNow(st.data)
	}
	converged := true
	for i := 1; i < 3; i++ {
		if len(snapshots[i]) != len(snapshots[0]) {
			converged = false
		}
		for k, v := range snapshots[0] {
			if snapshots[i][k] != v {
				converged = false
			}
		}
	}
	keys := make([]string, 0, len(snapshots[0]))
	for k := range snapshots[0] {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Printf("acknowledged SETs: %d/%d over %d clients (%.0f%% packet loss on the wire)\n",
		acked, clients*opsPerCli, clients, link.LossProb*100)
	fmt.Printf("replica sizes:     primary=%d backup-1=%d backup-2=%d\n",
		len(snapshots[0]), len(snapshots[1]), len(snapshots[2]))
	fmt.Printf("converged:         %v (in %v virtual)\n",
		converged, time.Duration(end-start).Round(time.Millisecond))
	if len(keys) > 0 {
		fmt.Printf("sample:            %s=%s … %s=%s\n",
			keys[0], snapshots[0][keys[0]], keys[len(keys)-1], snapshots[0][keys[len(keys)-1]])
	}
}
