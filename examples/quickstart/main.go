// Quickstart: the hybrid programming model in one file.
//
// Threads are written in a sequential style with the monadic combinators
// — Bind for "then", ForN for loops, Catch for exceptions — and scheduled
// by an event-driven runtime. This example forks a handful of worker
// threads that cooperate through a mutex, a channel, and an MVar, and
// shows an exception propagating to a handler.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"

	"hybrid"
)

func main() {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 2})
	defer rt.Shutdown()

	results := hybrid.NewChan[string](8)
	counter := 0
	mu := hybrid.NewMutex()
	done := hybrid.NewMVar[int]()

	// A worker increments the shared counter under the mutex, yielding
	// inside the critical section to prove mutual exclusion holds across
	// scheduling points.
	worker := func(id int) hybrid.M[hybrid.Unit] {
		return hybrid.ForN(3, func(round int) hybrid.M[hybrid.Unit] {
			return mu.WithLock(hybrid.Seq(
				hybrid.Do(func() { counter++ }),
				hybrid.Yield(),
				results.Send(fmt.Sprintf("worker %d finished round %d", id, round)),
			))
		})
	}

	// A thread that throws; its failure is handled locally and does not
	// disturb the others.
	failing := hybrid.Catch(
		hybrid.Then(
			hybrid.Throw[hybrid.Unit](errors.New("simulated I/O failure")),
			hybrid.Do(func() { fmt.Println("unreachable") }),
		),
		func(err error) hybrid.M[hybrid.Unit] {
			return results.Send("handled: " + err.Error())
		},
	)

	// A collector drains the channel and then signals the main thread
	// through the MVar.
	const expect = 4*3 + 1
	collector := hybrid.Then(
		hybrid.ForN(expect, func(int) hybrid.M[hybrid.Unit] {
			return hybrid.Bind(results.Recv(), func(line string) hybrid.M[hybrid.Unit] {
				return hybrid.Do(func() { fmt.Println(line) })
			})
		}),
		done.Put(0),
	)

	rt.Run(hybrid.Seq(
		hybrid.Fork(worker(1)),
		hybrid.Fork(worker(2)),
		hybrid.Fork(worker(3)),
		hybrid.Fork(worker(4)),
		hybrid.Fork(failing),
		hybrid.Fork(collector),
		hybrid.Bind(done.Take(), func(int) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() {
				fmt.Printf("counter = %d (want 12)\n", counter)
			})
		}),
	))
}
