// Multiplayer-game simulation: the massively-concurrent, mostly-idle
// workload from the paper's introduction ("peer-to-peer systems,
// multiplayer games, and Internet-scale data storage applications must
// accommodate tens of thousands of simultaneous, mostly-idle client
// connections").
//
// A game server keeps one monadic thread per connected player. Most
// players idle, parked on their sockets; a small hot set moves every
// tick, and the server broadcasts each move to the mover's zone. Tens of
// thousands of parked threads cost only their suspended continuations —
// the hybrid model's whole point.
//
//	go run ./examples/game
package main

import (
	"fmt"
	"time"

	"hybrid"
	"hybrid/internal/core"
	"hybrid/internal/hio"
	"hybrid/internal/kernel"
	"hybrid/internal/stm"
	"hybrid/internal/vclock"
)

const (
	players    = 20000
	activeSet  = 200 // players that actually move
	zones      = 64
	ticks      = 20
	tickPeriod = 50 * time.Millisecond
)

func main() {
	clk := vclock.NewVirtual()
	k := kernel.New(clk)
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 2, Clock: clk})
	defer rt.Shutdown()
	io := hio.New(rt, k, nil)
	defer io.Close()

	// World state lives in STM: per-zone population counters that player
	// threads update transactionally when they cross zone borders.
	zonePop := make([]*stm.TVar[int], zones)
	for i := range zonePop {
		zonePop[i] = stm.NewTVar(0)
	}
	moves := stm.NewTVar(0)

	// Each player is a socket pair: the server thread reads commands
	// from one end; the driver writes to the other.
	type player struct {
		serverFD kernel.FD
		driverFD kernel.FD
		zone     int
	}
	ps := make([]*player, players)
	for i := range ps {
		a, b := k.SocketPair()
		ps[i] = &player{serverFD: a, driverFD: b, zone: i % zones}
		rt.Spawn(core.Then(
			stm.Atomically(func(tx *stm.Tx) core.Unit {
				stm.Modify(tx, zonePop[i%zones], func(n int) int { return n + 1 })
				return core.Unit{}
			}),
			playerThread(io, zonePop, moves, ps[i].serverFD, i),
		))
	}

	// The driver: every tick, the active set sends a "move" command.
	driver := hybrid.ForN(ticks, func(tick int) hybrid.M[hybrid.Unit] {
		return hybrid.Seq(
			hybrid.ForN(activeSet, func(i int) hybrid.M[hybrid.Unit] {
				p := ps[(tick*activeSet+i)%players]
				cmd := []byte{byte('M'), byte(i % zones)}
				return hybrid.Bind(io.SockSend(p.driverFD, cmd),
					func(int) hybrid.M[hybrid.Unit] { return hybrid.Skip })
			}),
			hybrid.Sleep(clk, tickPeriod),
		)
	})

	start := time.Now()
	done := make(chan struct{})
	rt.Spawn(hybrid.Then(driver, hybrid.Do(func() { close(done) })))
	<-done

	total := stm.ReadNow(moves)
	pop := 0
	for _, z := range zonePop {
		pop += stm.ReadNow(z)
	}
	fmt.Printf("players:           %d (threads live: %d)\n", players, rt.Live())
	fmt.Printf("moves processed:   %d over %d ticks (%v virtual)\n",
		total, ticks, time.Duration(clk.Now()).Round(time.Millisecond))
	fmt.Printf("zone population:   %d (conserved)\n", pop)
	fmt.Printf("wall time:         %v for %d mostly-idle threads\n",
		time.Since(start).Round(time.Millisecond), players)
}

// playerThread parks on the player's socket and applies move commands to
// the world state transactionally.
func playerThread(io *hio.IO, zonePop []*stm.TVar[int], moves *stm.TVar[int], fd kernel.FD, id int) hybrid.M[hybrid.Unit] {
	buf := make([]byte, 2)
	zone := id % zones
	var loop func() hybrid.M[hybrid.Unit]
	loop = func() hybrid.M[hybrid.Unit] {
		return hybrid.Bind(io.SockReadFull(fd, buf), func(n int) hybrid.M[hybrid.Unit] {
			if n < 2 {
				return hybrid.Skip // connection closed
			}
			next := int(buf[1]) % zones
			from := zone
			zone = next
			return hybrid.Then(
				stm.Atomically(func(tx *stm.Tx) core.Unit {
					stm.Modify(tx, zonePop[from], func(v int) int { return v - 1 })
					stm.Modify(tx, zonePop[next], func(v int) int { return v + 1 })
					stm.Modify(tx, moves, func(v int) int { return v + 1 })
					return core.Unit{}
				}),
				loop(),
			)
		})
	}
	return loop()
}
