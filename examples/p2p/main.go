// Peer-to-peer gossip overlay: the paper's introduction motivates the
// hybrid model with "peer-to-peer systems … [that] must accommodate tens
// of thousands of simultaneous, mostly-idle client connections."
//
// Here 64 nodes each run their own application-level TCP stack on a
// shared lossy network. Every node runs an accept loop (a monadic thread
// per inbound connection) and a gossip thread that periodically pushes
// everything it knows to random peers. A rumor injected at node 0
// epidemically reaches all nodes; the run reports propagation time in
// deterministic virtual time and the wire traffic it cost.
//
//	go run ./examples/p2p
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"hybrid"
	"hybrid/internal/iovec"
	"hybrid/internal/netsim"
	"hybrid/internal/tcp"
	"hybrid/internal/vclock"
)

const (
	nodes      = 64
	fanout     = 2
	gossipTick = 20 * time.Millisecond
	rumor      = "the-answer-is-42"
	port       = 9000
)

type node struct {
	id    int
	stack *tcp.Stack
	knows atomic.Bool
	heard atomic.Int64 // times the rumor arrived
}

func addr(i int) string { return fmt.Sprintf("node-%d", i) }

func main() {
	clk := vclock.NewVirtual()
	net := netsim.New(clk, 2026)
	link := netsim.Ethernet100()
	link.LossProb = 0.02 // a slightly lossy overlay; TCP absorbs it

	rt := hybrid.NewRuntime(hybrid.Options{Workers: 2, Clock: clk})
	defer rt.Shutdown()

	cfg := tcp.Config{RTOMin: 10 * time.Millisecond, InitialRTO: 20 * time.Millisecond}
	ns := make([]*node, nodes)
	for i := 0; i < nodes; i++ {
		host, err := net.Host(addr(i), link)
		if err != nil {
			panic(err)
		}
		ns[i] = &node{id: i, stack: tcp.NewStack(host, cfg)}
	}

	var informed atomic.Int64
	learn := func(n *node) {
		n.heard.Add(1)
		if n.knows.CompareAndSwap(false, true) {
			informed.Add(1)
		}
	}

	// Accept loops: one monadic thread per node plus one per inbound
	// connection, exactly the paper's server shape.
	for _, n := range ns {
		n := n
		l, err := n.stack.Listen(port)
		if err != nil {
			panic(err)
		}
		rt.Spawn(hybrid.Forever(
			hybrid.Bind(l.AcceptM(), func(c *tcp.Conn) hybrid.M[hybrid.Unit] {
				return hybrid.Fork(hybrid.Catch(
					func() hybrid.M[hybrid.Unit] {
						buf := make([]byte, len(rumor))
						return hybrid.Bind(c.ReadFullM(buf), func(got int) hybrid.M[hybrid.Unit] {
							if got == len(rumor) && string(buf) == rumor {
								learn(n)
							}
							return c.CloseM()
						})
					}(),
					func(error) hybrid.M[hybrid.Unit] { return hybrid.Skip },
				))
			}),
		))
	}

	// Gossip threads: push what you know to fanout random peers per tick.
	for _, n := range ns {
		n := n
		rng := uint64(n.id)*0x9E3779B97F4A7C15 + 1
		next := func() int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % nodes)
		}
		push := func(peer int) hybrid.M[hybrid.Unit] {
			if peer == n.id {
				return hybrid.Skip
			}
			return hybrid.Catch(
				hybrid.Bind(n.stack.ConnectM(addr(peer), port), func(c *tcp.Conn) hybrid.M[hybrid.Unit] {
					return hybrid.Then(c.WriteVM(iovec.FromBytes([]byte(rumor))), c.CloseM())
				}),
				func(error) hybrid.M[hybrid.Unit] { return hybrid.Skip },
			)
		}
		rt.Spawn(hybrid.Forever(hybrid.Seq(
			hybrid.Sleep(clk, gossipTick),
			func() hybrid.M[hybrid.Unit] {
				return hybrid.Bind(hybrid.NBIO(func() bool { return n.knows.Load() }),
					func(knows bool) hybrid.M[hybrid.Unit] {
						if !knows {
							return hybrid.Skip
						}
						var round hybrid.M[hybrid.Unit] = hybrid.Skip
						for f := 0; f < fanout; f++ {
							round = hybrid.Seq(round, hybrid.Fork(push(next())))
						}
						return round
					})
			}(),
		)))
	}

	// Inject the rumor and watch it spread.
	learn(ns[0])
	start := clk.Now()
	done := make(chan struct{})
	rt.Spawn(hybrid.Forever(hybrid.Seq(
		hybrid.Sleep(clk, gossipTick),
		hybrid.Bind(hybrid.NBIO(func() bool { return informed.Load() == nodes }),
			func(all bool) hybrid.M[hybrid.Unit] {
				if all {
					return hybrid.Then(hybrid.Do(func() { close(done) }), hybrid.Halt[hybrid.Unit]())
				}
				return hybrid.Skip
			}),
	)))
	<-done
	elapsed := time.Duration(clk.Now() - start)

	var segs, rtx uint64
	for _, n := range ns {
		s := n.stack.Snapshot()
		segs += s.SegsOut
		rtx += s.Retransmits + s.FastRetransmits
	}
	sent, delivered, dropped, _ := net.Stats()
	redundant := int64(0)
	for _, n := range ns {
		redundant += n.heard.Load()
	}
	fmt.Printf("nodes informed:   %d/%d in %v virtual (fanout %d, tick %v)\n",
		informed.Load(), nodes, elapsed.Round(time.Millisecond), fanout, gossipTick)
	fmt.Printf("rumor deliveries: %d (%.1fx redundancy, the price of epidemics)\n",
		redundant, float64(redundant)/float64(nodes))
	fmt.Printf("wire:             %d packets sent, %d delivered, %d lost; %d TCP retransmits\n",
		sent, delivered, dropped, rtx)
	fmt.Printf("threads live:     %d across %d TCP stacks\n", rt.Live(), nodes)
}
