module hybrid

go 1.24
