package hybrid_test

import (
	"fmt"
	"time"

	"hybrid"
)

// The hybrid model in miniature: threads written in sequential style,
// scheduled by an event-driven runtime.
func Example() {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()

	ch := hybrid.NewChan[string](2)
	rt.Run(hybrid.Seq(
		hybrid.Fork(ch.Send("from a forked thread")),
		hybrid.Bind(ch.Recv(), func(msg string) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { fmt.Println(msg) })
		}),
	))
	// Output: from a forked thread
}

// Exceptions propagate to the nearest Catch, across scheduling points.
func ExampleCatch() {
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1})
	defer rt.Shutdown()

	rt.Run(hybrid.Catch(
		hybrid.Seq(
			hybrid.Yield(),
			hybrid.Throw[hybrid.Unit](fmt.Errorf("disk on fire")),
		),
		func(err error) hybrid.M[hybrid.Unit] {
			return hybrid.Do(func() { fmt.Println("handled:", err) })
		},
	))
	// Output: handled: disk on fire
}

// A virtual clock makes time a deterministic simulation input: three
// sleepers wake in order, instantly in wall-clock terms.
func ExampleNewVirtualClock() {
	clk := hybrid.NewVirtualClock()
	rt := hybrid.NewRuntime(hybrid.Options{Workers: 1, Clock: clk})
	defer rt.Shutdown()

	sleeper := func(d time.Duration) hybrid.M[hybrid.Unit] {
		return hybrid.Then(hybrid.Sleep(clk, d), hybrid.Do(func() {
			fmt.Println("woke at", time.Duration(clk.Now()))
		}))
	}
	rt.Run(hybrid.Seq(
		hybrid.Fork(sleeper(30*time.Millisecond)),
		hybrid.Fork(sleeper(10*time.Millisecond)),
		hybrid.Fork(sleeper(20*time.Millisecond)),
	))
	// Output:
	// woke at 10ms
	// woke at 20ms
	// woke at 30ms
}

// BuildTrace exposes the event abstraction: the thread as a data
// structure a scheduler can traverse (the paper's Figure 5).
func ExampleBuildTrace() {
	tr := hybrid.BuildTrace(hybrid.Seq(hybrid.Yield(), hybrid.Skip))
	fmt.Printf("%T\n", tr)
	// Output: *core.YieldNode
}
